"""Cyber↔physical coupling: the periodic power-flow tick.

Each tick (default 100 ms, §III-C):

1. drain breaker commands written by IEDs into the point database and
   apply them to the power network's switches,
2. advance the scenario (load profiles, contingency events) and re-solve
   the power flow,
3. publish the fresh snapshot back into the point database under the key
   conventions of :mod:`repro.pointdb`.

Key conventions published per element (names are the SCL equipment names):

* buses:      ``meas/<bus>/vm_pu``, ``meas/<bus>/va_deg``
* lines:      ``meas/<line>/p_mw``, ``q_mvar``, ``i_ka``, ``loading``
* trafos:     ``meas/<trafo>/p_mw``, ``q_mvar``, ``loading``
* switches:   ``status/<switch>/closed``
* gens/sgens: ``meas/<name>/p_mw``
* loads:      ``meas/<name>/p_mw`` (scaled)
* ext grids:  ``meas/<name>/p_mw`` (per-grid share of the slack power)
* system:     ``meas/system/hz``, ``meas/system/slack_p_mw``

Publication is **handle based**: every key above is resolved into a typed
:class:`~repro.pointdb.registry.PointHandle` once, at construction, and the
steady-state tick performs zero string formatting.  Values equal to the
previous tick are suppressed by the registry; one dirty-set flush at the
end of :meth:`PowerCoupling.publish` delivers each changed point to its
subscribers exactly once.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.powersim import Network, PowerFlowDiverged, PowerFlowResult
from repro.powersim.timeseries import TimeSeriesRunner
from repro.pointdb import PointDatabase, PointType


class PowerCoupling:
    """Owns the tick: commands in, snapshot out."""

    def __init__(
        self,
        net: Network,
        runner: TimeSeriesRunner,
        pointdb: PointDatabase,
    ) -> None:
        self.net = net
        self.runner = runner
        self.pointdb = pointdb
        self.tick_count = 0
        self.applied_commands = 0
        self.unknown_commands: list[str] = []
        self.diverged_ticks = 0
        self.last_result: Optional[PowerFlowResult] = None
        #: Changed points delivered by the per-tick flush (accounting).
        self.published_changes = 0
        #: Wall-clock seconds spent inside :meth:`tick` (bench accounting).
        self.tick_wall_s = 0.0
        #: Grid-share cache, valid while the topology revision is unchanged.
        self._grids_rev = -1
        self._grid_active: list[bool] = []
        self._active_grid_count = 0
        # Command targets resolved by name once; draining commands must not
        # scan the component tables per command.  First match wins (the
        # contract of Network.find_switch/find_load); elements added after
        # construction are found lazily in _command_target.
        self._switch_by_name: dict[str, object] = {}
        for switch in net.switches:
            self._switch_by_name.setdefault(switch.name, switch)
        self._load_by_name: dict[str, object] = {}
        for load in net.loads:
            self._load_by_name.setdefault(load.name, load)
        self._resolve_handles()

    # ------------------------------------------------------------------
    def _resolve_handles(self) -> None:
        """Intern every published key once; the tick never formats keys."""
        resolve = self.pointdb.resolve
        float_t = PointType.FLOAT
        bool_t = PointType.BOOL
        self._bus_handles = [
            (
                bus.name,
                resolve(f"meas/{bus.name}/vm_pu", float_t),
                resolve(f"meas/{bus.name}/va_deg", float_t),
            )
            for bus in self.net.buses
        ]
        self._line_handles = [
            (
                line.name,
                resolve(f"meas/{line.name}/p_mw", float_t),
                resolve(f"meas/{line.name}/q_mvar", float_t),
                resolve(f"meas/{line.name}/i_ka", float_t),
                resolve(f"meas/{line.name}/i_to_ka", float_t),
                resolve(f"meas/{line.name}/loading", float_t),
            )
            for line in self.net.lines
        ]
        self._trafo_handles = [
            (
                trafo.name,
                resolve(f"meas/{trafo.name}/p_mw", float_t),
                resolve(f"meas/{trafo.name}/q_mvar", float_t),
                resolve(f"meas/{trafo.name}/loading", float_t),
            )
            for trafo in self.net.transformers
        ]
        self._switch_handles = [
            (switch, resolve(f"status/{switch.name}/closed", bool_t))
            for switch in self.net.switches
        ]
        self._gen_handles = [
            (gen, resolve(f"meas/{gen.name}/p_mw", float_t))
            for gen in self.net.gens
        ]
        self._grid_handles = [
            (grid, resolve(f"meas/{grid.name}/p_mw", float_t))
            for grid in self.net.ext_grids
        ]
        self._sgen_handles = [
            (sgen, resolve(f"meas/{sgen.name}/p_mw", float_t))
            for sgen in self.net.sgens
        ]
        self._load_handles = [
            (load, resolve(f"meas/{load.name}/p_mw", float_t))
            for load in self.net.loads
        ]
        self._h_hz = resolve("meas/system/hz", float_t)
        self._h_slack = resolve("meas/system/slack_p_mw", float_t)
        self._h_losses = resolve("meas/system/losses_mw", float_t)

    @property
    def handle_count(self) -> int:
        """Handles this coupling resolved at construction."""
        return (
            2 * len(self._bus_handles)
            + 5 * len(self._line_handles)
            + 3 * len(self._trafo_handles)
            + len(self._switch_handles)
            + len(self._gen_handles)
            + len(self._grid_handles)
            + len(self._sgen_handles)
            + len(self._load_handles)
            + 3
        )

    # ------------------------------------------------------------------
    def tick(self, time_s: float) -> Optional[PowerFlowResult]:
        """One co-simulation step at scenario time ``time_s``."""
        # sgml: lint-ok[det-wallclock] wall accounting
        started = time.perf_counter()
        self.tick_count += 1
        self._apply_commands()
        try:
            result = self.runner.step(time_s)
        except PowerFlowDiverged:
            self.diverged_ticks += 1
            # sgml: lint-ok[det-wallclock] wall accounting
            self.tick_wall_s += time.perf_counter() - started
            return None
        self.last_result = result
        self.publish(result)
        # sgml: lint-ok[det-wallclock] wall accounting
        self.tick_wall_s += time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    def _apply_commands(self) -> None:
        for command in self.pointdb.drain_commands():
            parts = command.key.split("/")
            if len(parts) != 3 or parts[0] != "cmd":
                continue
            target, action = parts[1], parts[2]
            if action == "close":
                switch = self._command_target(
                    target, self._switch_by_name, self.net.find_switch
                )
                if switch is None:
                    self.unknown_commands.append(command.key)
                    continue
                switch.closed = bool(command.value)
                self.applied_commands += 1
            elif action == "scale":
                load = self._command_target(
                    target, self._load_by_name, self.net.find_load
                )
                if load is None:
                    self.unknown_commands.append(command.key)
                    continue
                load.scaling = float(command.value)
                self.applied_commands += 1

    def stats(self) -> dict[str, float]:
        """Tick/publish counters merged into ``CyberRange.data_plane_stats``.

        ``tick_wall_s`` is the wall-clock cost of the power-flow side of a
        range; together with the forwarding plane's ``forward_wall_s`` /
        ``deliver_wall_s`` (see :mod:`repro.netem.forwarding`) it lets the
        scalability bench attribute whole-range wall time to power flow
        versus netem transport versus endpoint processing.
        """
        runner = self.runner
        session = runner.session
        return {
            "published_changes": self.published_changes,
            "ticks": self.tick_count,
            "tick_wall_s": self.tick_wall_s,
            "solves": runner.solve_count,
            "solve_skipped": runner.solve_skipped,
            "topology_rebuilds": session.topology_rebuilds,
            "injection_rebuilds": session.injection_rebuilds,
            "nr_iterations": session.total_iterations,
            "warm_starts": session.warm_starts,
            "warm_start_iterations": session.warm_iterations,
        }

    @staticmethod
    def _command_target(name: str, cache: dict, find):
        """Cached name lookup, falling back to the live table scan for
        elements added to the network after this coupling was built."""
        element = cache.get(name)
        if element is None:
            element = find(name)
            if element is not None:
                cache[name] = element
        return element

    # ------------------------------------------------------------------
    def publish(self, result: PowerFlowResult) -> None:
        """Write the snapshot through pre-resolved handles, then flush.

        Unchanged values never leave the registry's write path; the single
        flush at the end wakes each subscriber once per changed point.
        """
        registry = self.pointdb.registry
        write = registry.write
        buses = result.buses
        for name, h_vm, h_va in self._bus_handles:
            bus = buses.get(name)
            if bus is None:
                continue
            write(h_vm, bus.vm_pu)
            write(h_va, bus.va_degree)
        lines = result.lines
        for name, h_p, h_q, h_i, h_i_to, h_loading in self._line_handles:
            flow = lines.get(name)
            if flow is None:
                continue
            write(h_p, flow.p_from_mw)
            write(h_q, flow.q_from_mvar)
            write(h_i, flow.i_from_ka)
            write(h_i_to, flow.i_to_ka)
            write(h_loading, flow.loading_percent)
        trafos = result.transformers
        for name, h_p, h_q, h_loading in self._trafo_handles:
            flow = trafos.get(name)
            if flow is None:
                continue
            write(h_p, flow.p_from_mw)
            write(h_q, flow.q_from_mvar)
            write(h_loading, flow.loading_percent)
        for switch, handle in self._switch_handles:
            write(handle, switch.closed)
        for gen, handle in self._gen_handles:
            write(handle, gen.p_mw if gen.in_service else 0.0)
        # Slack power is a system total; attribute an equal share to each
        # active external grid so two grids don't both report the whole.
        # Which grids are active only changes with the topology revision,
        # so the activity flags are cached against it.
        if self.net.topology_rev != self._grids_rev:
            self._grids_rev = self.net.topology_rev
            self._grid_active = [
                grid.in_service and self.net.buses[grid.bus].in_service
                for grid, _ in self._grid_handles
            ]
            self._active_grid_count = sum(self._grid_active)
        count = self._active_grid_count
        share = result.slack_p_mw / count if count else 0.0
        for (grid, handle), active in zip(self._grid_handles, self._grid_active):
            write(handle, share if active else 0.0)
        for sgen, handle in self._sgen_handles:
            value = sgen.p_mw * sgen.scaling if sgen.in_service else 0.0
            write(handle, value)
        for load, handle in self._load_handles:
            value = load.p_mw * load.scaling if load.in_service else 0.0
            write(handle, value)
        write(self._h_hz, 50.0)
        write(self._h_slack, result.slack_p_mw)
        write(self._h_losses, result.total_losses_mw)
        self.published_changes += registry.flush()
