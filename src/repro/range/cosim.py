"""Cyber↔physical coupling: the periodic power-flow tick.

Each tick (default 100 ms, §III-C):

1. drain breaker commands written by IEDs into the point database and
   apply them to the power network's switches,
2. advance the scenario (load profiles, contingency events) and re-solve
   the power flow,
3. publish the fresh snapshot back into the point database under the key
   conventions of :mod:`repro.pointdb`.

Key conventions published per element (names are the SCL equipment names):

* buses:      ``meas/<bus>/vm_pu``, ``meas/<bus>/va_deg``
* lines:      ``meas/<line>/p_mw``, ``q_mvar``, ``i_ka``, ``loading``
* trafos:     ``meas/<trafo>/p_mw``, ``q_mvar``, ``loading``
* switches:   ``status/<switch>/closed``
* gens/sgens: ``meas/<name>/p_mw``
* loads:      ``meas/<name>/p_mw`` (scaled)
* system:     ``meas/system/hz``, ``meas/system/slack_p_mw``
"""

from __future__ import annotations

from typing import Optional

from repro.powersim import Network, PowerFlowDiverged, PowerFlowResult
from repro.powersim.timeseries import TimeSeriesRunner
from repro.pointdb import PointDatabase


class PowerCoupling:
    """Owns the tick: commands in, snapshot out."""

    def __init__(
        self,
        net: Network,
        runner: TimeSeriesRunner,
        pointdb: PointDatabase,
    ) -> None:
        self.net = net
        self.runner = runner
        self.pointdb = pointdb
        self.tick_count = 0
        self.applied_commands = 0
        self.unknown_commands: list[str] = []
        self.diverged_ticks = 0
        self.last_result: Optional[PowerFlowResult] = None

    # ------------------------------------------------------------------
    def tick(self, time_s: float) -> Optional[PowerFlowResult]:
        """One co-simulation step at scenario time ``time_s``."""
        self.tick_count += 1
        self._apply_commands()
        try:
            result = self.runner.step(time_s)
        except PowerFlowDiverged:
            self.diverged_ticks += 1
            return None
        self.last_result = result
        self.publish(result)
        return result

    # ------------------------------------------------------------------
    def _apply_commands(self) -> None:
        for command in self.pointdb.drain_commands():
            parts = command.key.split("/")
            if len(parts) != 3 or parts[0] != "cmd":
                continue
            target, action = parts[1], parts[2]
            if action == "close":
                switch = self.net.find_switch(target)
                if switch is None:
                    self.unknown_commands.append(command.key)
                    continue
                switch.closed = bool(command.value)
                self.applied_commands += 1
            elif action == "scale":
                load = self.net.find_load(target)
                if load is None:
                    self.unknown_commands.append(command.key)
                    continue
                load.scaling = float(command.value)
                self.applied_commands += 1

    # ------------------------------------------------------------------
    def publish(self, result: PowerFlowResult) -> None:
        db = self.pointdb
        for name, bus in result.buses.items():
            db.set(f"meas/{name}/vm_pu", bus.vm_pu)
            db.set(f"meas/{name}/va_deg", bus.va_degree)
        for name, flow in result.lines.items():
            db.set(f"meas/{name}/p_mw", flow.p_from_mw)
            db.set(f"meas/{name}/q_mvar", flow.q_from_mvar)
            db.set(f"meas/{name}/i_ka", flow.i_from_ka)
            db.set(f"meas/{name}/i_to_ka", flow.i_to_ka)
            db.set(f"meas/{name}/loading", flow.loading_percent)
        for name, flow in result.transformers.items():
            db.set(f"meas/{name}/p_mw", flow.p_from_mw)
            db.set(f"meas/{name}/q_mvar", flow.q_from_mvar)
            db.set(f"meas/{name}/loading", flow.loading_percent)
        for switch in self.net.switches:
            db.set(f"status/{switch.name}/closed", switch.closed)
        for gen in self.net.gens:
            db.set(f"meas/{gen.name}/p_mw", gen.p_mw if gen.in_service else 0.0)
        for grid in self.net.ext_grids:
            db.set(f"meas/{grid.name}/p_mw", result.slack_p_mw)
        for sgen in self.net.sgens:
            value = sgen.p_mw * sgen.scaling if sgen.in_service else 0.0
            db.set(f"meas/{sgen.name}/p_mw", value)
        for load in self.net.loads:
            value = load.p_mw * load.scaling if load.in_service else 0.0
            db.set(f"meas/{load.name}/p_mw", value)
        db.set("meas/system/hz", 50.0)
        db.set("meas/system/slack_p_mw", result.slack_p_mw)
        db.set("meas/system/losses_mw", result.total_losses_mw)
