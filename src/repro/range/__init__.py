"""The operational cyber range runtime.

A :class:`CyberRange` is what the SG-ML Processor produces: the emulated
cyber network populated with virtual IEDs / PLC / SCADA, coupled to the
power-flow simulator through the point database, with the periodic
co-simulation loop of the paper's §III-C ("our cyber range runs it
periodically (e.g., every 100ms) with the updated configuration and load
profile").
"""

from repro.range.cosim import PowerCoupling
from repro.range.range import CyberRange, RangeError

__all__ = ["CyberRange", "PowerCoupling", "RangeError"]
