"""The virtual IED device runtime.

Wires together a network host, an IEC 61850 data model, the protection
engine, MMS/GOOSE/R-SV endpoints and the point database (the power-
simulator coupling).  The scan cycle matches the paper's architecture:

1. refresh measurements/statuses from the point database into the model,
2. evaluate protection functions (trip → breaker command into the
   database + GOOSE state change),
3. publish the GOOSE dataset (breaker status + protection flags).

Control commands arrive as MMS writes to a controllable object's
``Oper.ctlVal``; closing is gated by CILO interlocks.  This is the exact
surface the false-command-injection case study attacks.

Scheduling is **change driven**: every point-database input (read points,
breaker statuses, interlock dependencies) is resolved into a typed handle
at construction and subscribed for delta notification.  The kernel runs a
scan only when an input actually changed — a tick, a peer GOOSE message
with new breaker state, a fresh R-SV sample value, or an MMS setting
write.  While a protection function is timing towards its operate delay
the device re-arms itself at ``scan_interval_ms`` so trips still fire on
schedule; a fully idle substation costs ~zero kernel events.  Setting
``change_driven = False`` before :meth:`VirtualIed.start` restores the
legacy fixed-period scan.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.ied.config import IedRuntimeConfig, PointMapping, ProtectionSettings
from repro.ied.datamodel import DataModelError, IedDataModel, Leaf
from repro.ied.protection import (
    Cilo,
    Pdif,
    ProtectionEngine,
    Ptoc,
    Ptov,
    Ptuv,
    TripEvent,
)
from repro.iec61850.goose import GoosePublisher, GooseSubscriber
from repro.iec61850.mms import MmsError, MmsServer
from repro.iec61850.rgoose import RSvPublisher, RSvSubscriber
from repro.kernel import MS
from repro.netem.host import Host
from repro.pointdb import PointDatabase, PointHandle, PointType


class VirtualIed:
    """One virtual IED: data model + protocols + protection."""

    def __init__(
        self,
        host: Host,
        model: IedDataModel,
        config: IedRuntimeConfig,
        pointdb: PointDatabase,
    ) -> None:
        self.host = host
        self.model = model
        self.config = config
        self.pointdb = pointdb
        self.name = config.ied_name
        self.engine = ProtectionEngine(self.name)
        self.mms_server = MmsServer(host, provider=self)
        self.goose_publisher: Optional[GoosePublisher] = None
        self.goose_subscribers: list[GooseSubscriber] = []
        self.sv_publisher: Optional[RSvPublisher] = None
        self._sv_subscribers: dict[str, RSvSubscriber] = {}
        self._sv_last_sample: dict[str, float] = {}
        #: Breaker statuses learned from peer GOOSE messages.
        self.peer_breaker_status: dict[str, bool] = {}
        #: Breakers this IED commands: db breaker name → command db key.
        self._breakers: dict[str, str] = {}
        self._protection_by_ln: dict[str, Any] = {}
        self._scan_task = None
        self._scan_event = None
        self._running = False
        #: Scan only when inputs changed (plus delay-timing re-arms).
        self.change_driven = True
        self.scan_count = 0
        self.wake_count = 0
        self._inputs_dirty = True
        #: Point-db read points with pre-resolved handles + last synced
        #: generation (−1 = never synced, so the first scan syncs all).
        self._read_handles: list[tuple[PointMapping, PointHandle]] = []
        self._read_gens: list[int] = []
        self._status_handles: dict[str, PointHandle] = {}
        self._wake_subscribed: set[int] = set()
        #: Handles subscribed with the wake callback, kept for close().
        self._subscribed_handles: list[PointHandle] = []
        self.operate_log: list[tuple[int, str, bool, str]] = []
        self.rejected_operates: list[tuple[int, str, str]] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for point in self.config.write_points():
            breaker = _breaker_from_command_key(point.db_key)
            if breaker:
                self._breakers[breaker] = point.db_key
        for settings in self.config.protections:
            self._build_protection(settings)
        self._resolve_handles()
        if self.config.goose is not None:
            self.goose_publisher = GoosePublisher(
                self.host,
                gocb_ref=self.config.goose.gocb_ref,
                dat_set=self.config.goose.dataset,
            )
        for gocb_ref in self.config.goose_subscriptions:
            self.goose_subscribers.append(
                GooseSubscriber(self.host, gocb_ref, self._on_peer_goose)
            )
        if self.config.sv_publish is not None:
            sv_id, meas_ref = self.config.sv_publish
            self.sv_publisher = RSvPublisher(self.host, sv_id)
            self.sv_publisher.start(lambda: [self._read_model_safe(meas_ref)])
        self.engine.on_trip = self._on_trip

    def _resolve_handles(self) -> None:
        """Intern every input key once; subscribe the wake callback.

        The handle set is fixed at construction (compile time for ranges
        built by the SG-ML processor): read points, own breaker statuses,
        and interlock dependencies.  Changes to any of them mark the
        device dirty and schedule a scan.
        """
        for point in self.config.read_points():
            ptype = (
                PointType.BOOL
                if point.db_key.startswith("status/")
                else PointType.ANY
            )
            handle = self.pointdb.resolve(point.db_key, ptype)
            self._read_handles.append((point, handle))
            self._read_gens.append(-1)
            self._subscribe_wake(handle)
        for breaker in self._breakers:
            self._status_handle(breaker)

    def _status_handle(self, breaker: str) -> PointHandle:
        handle = self._status_handles.get(breaker)
        if handle is None:
            handle = self.pointdb.resolve(
                f"status/{breaker}/closed", PointType.BOOL
            )
            self._status_handles[breaker] = handle
            self._subscribe_wake(handle)
        return handle

    def _subscribe_wake(self, handle: PointHandle) -> None:
        if handle.index in self._wake_subscribed:
            return
        self._wake_subscribed.add(handle.index)
        self._subscribed_handles.append(handle)
        self.pointdb.subscribe_handle(handle, self._on_input_change)

    @property
    def handle_count(self) -> int:
        """Distinct point-db handles this device subscribes to."""
        return len(self._wake_subscribed)

    def _build_protection(self, settings: ProtectionSettings) -> None:
        fn_type = settings.fn_type.upper()
        measure = self._measure_callable(settings.meas_ref)
        if fn_type == "PTOC":
            function: Any = Ptoc(
                settings.ln_name, settings.breaker, settings.threshold,
                settings.delay_ms, measure,
            )
            self.engine.add(function)
        elif fn_type == "PTOV":
            function = Ptov(
                settings.ln_name, settings.breaker, settings.threshold,
                settings.delay_ms, measure,
            )
            self.engine.add(function)
        elif fn_type == "PTUV":
            function = Ptuv(
                settings.ln_name, settings.breaker, settings.threshold,
                settings.delay_ms, measure,
            )
            self.engine.add(function)
        elif fn_type == "PDIF":
            subscriber = self._sv_subscriber(settings.remote_sv_id)
            function = Pdif(
                settings.ln_name,
                settings.breaker,
                settings.threshold,
                settings.delay_ms,
                measure,
                remote=lambda s=subscriber: _first_sample(s),
                remote_healthy=lambda s=subscriber: s.healthy,
            )
            self.engine.add(function)
        elif fn_type == "CILO":
            interlock = Cilo(
                settings.ln_name,
                settings.breaker,
                settings.interlock_breaker,
                interlock_closed=self._breaker_status_callable(
                    settings.interlock_breaker
                ),
            )
            self.engine.add_interlock(interlock)
            self._protection_by_ln[settings.ln_name] = interlock
            return
        else:
            raise ValueError(f"unknown protection type {settings.fn_type!r}")
        self._protection_by_ln[settings.ln_name] = function
        # Publish the configured threshold into the data model settings.
        self._write_model_safe(
            self._setting_ref(settings.ln_name, "StrVal.setMag.f"),
            settings.threshold,
        )
        self._write_model_safe(
            self._setting_ref(settings.ln_name, "OpDlTmms.setVal"),
            int(settings.delay_ms),
        )

    def _sv_subscriber(self, sv_id: str) -> RSvSubscriber:
        subscriber = self._sv_subscribers.get(sv_id)
        if subscriber is None:
            subscriber = RSvSubscriber(
                self.host,
                sv_id,
                lambda message, sv=sv_id: self._on_sv_message(sv, message),
            )
            self._sv_subscribers[sv_id] = subscriber
        return subscriber

    def _on_sv_message(self, sv_id: str, message) -> None:
        """Wake on a *new* remote sample value, not on every heartbeat."""
        sample = 0.0
        if message is not None and message.samples:
            try:
                sample = float(message.samples[0])
            except (TypeError, ValueError):
                sample = 0.0
        if self._sv_last_sample.get(sv_id) != sample:
            self._sv_last_sample[sv_id] = sample
            self._mark_inputs_dirty()

    def _measure_callable(self, meas_ref: str):
        def read() -> float:
            if meas_ref and self.model.exists(meas_ref):
                try:
                    return float(self.model.read(meas_ref))
                except (DataModelError, TypeError, ValueError):
                    return 0.0
            return 0.0

        return read

    def _breaker_status_callable(self, breaker: str):
        handle = self._status_handle(breaker)
        registry = self.pointdb.registry

        def read() -> bool:
            # Prefer the peer-published GOOSE status (protection-grade
            # source per the paper); fall back to the point database.
            if breaker in self.peer_breaker_status:
                return self.peer_breaker_status[breaker]
            return registry.get_bool(handle, True)

        return read

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.mms_server.start()
        self._running = True
        self._inputs_dirty = True
        interval = int(self.config.scan_interval_ms * MS)
        if self.change_driven:
            self._schedule_scan(interval)
        else:
            self._scan_task = self.host.simulator.every(
                interval, self.scan, label=f"ied-scan:{self.name}"
            )
        if self.goose_publisher is not None:
            self.goose_publisher.start(self._goose_dataset())

    def stop(self) -> None:
        self._running = False
        if self._scan_task is not None:
            self._scan_task.stop()
            self._scan_task = None
        if self._scan_event is not None:
            self._scan_event.cancel()
            self._scan_event = None
        if self.goose_publisher is not None:
            self.goose_publisher.stop()
        if self.sv_publisher is not None:
            self.sv_publisher.stop()

    def close(self) -> None:
        """Stop + detach every shared-registry subscription.

        After close the device costs nothing on later registry flushes —
        required for session eviction in :mod:`repro.service`, where the
        registry may outlive the device (diagnostics reads) and where a
        closed range must not wake dead devices.
        """
        self.stop()
        for handle in self._subscribed_handles:
            self.pointdb.unsubscribe_handle(handle, self._on_input_change)
        self._subscribed_handles.clear()
        self._wake_subscribed.clear()

    # ------------------------------------------------------------------
    # Change-driven scheduling
    # ------------------------------------------------------------------
    def _on_input_change(self, handle: PointHandle, value: Any) -> None:
        self._mark_inputs_dirty()

    def _mark_inputs_dirty(self) -> None:
        self._inputs_dirty = True
        if self._running and self.change_driven:
            self.wake_count += 1
            self._schedule_scan(0)

    def _schedule_scan(self, delay_us: int) -> None:
        if self._scan_event is not None:
            return  # a scan is already pending
        self._scan_event = self.host.simulator.schedule(
            delay_us, self._scan_wake, label=f"ied-scan:{self.name}"
        )

    def _scan_wake(self) -> None:
        self._scan_event = None
        self.scan()

    def _engine_hot(self) -> bool:
        """A function timing towards its operate delay needs periodic
        evaluation even without further input changes."""
        return any(
            function.started and not function.operated
            for function in self.engine.functions
        )

    # ------------------------------------------------------------------
    # Scan cycle
    # ------------------------------------------------------------------
    def scan(self) -> None:
        self.scan_count += 1
        now = self.host.simulator.now
        self._inputs_dirty = False
        self._sync_measurements()
        self.engine.evaluate(now)
        self._update_protection_flags()
        if self.goose_publisher is not None:
            self.goose_publisher.update(self._goose_dataset())
        if (
            self.change_driven
            and self._running
            and (self._inputs_dirty or self._engine_hot())
        ):
            self._schedule_scan(int(self.config.scan_interval_ms * MS))

    def _sync_measurements(self) -> None:
        registry = self.pointdb.registry
        gens = self._read_gens
        for slot, (point, handle) in enumerate(self._read_handles):
            generation = registry.generation(handle)
            if generation == gens[slot]:
                continue  # unchanged since the last sync
            gens[slot] = generation
            if not registry.present(handle):
                continue
            value = registry.read(handle)
            if isinstance(value, bool):
                scaled: Any = value
            elif isinstance(value, (int, float)):
                scaled = value * point.scale
            else:
                scaled = value
            self._write_model_safe(point.scl_ref, scaled)

    def _update_protection_flags(self) -> None:
        for ln_name, function in self._protection_by_ln.items():
            if isinstance(function, Cilo):
                enabled = function.interlock_closed()
                self._write_model_safe(
                    self._setting_ref(ln_name, "EnaCls.stVal"), enabled
                )
                continue
            self._write_model_safe(
                self._setting_ref(ln_name, "Str.general"), function.started
            )
            self._write_model_safe(
                self._setting_ref(ln_name, "Op.general"), function.operated
            )
            if isinstance(function, Pdif):
                self._write_model_safe(
                    self._setting_ref(ln_name, "DifAClc.mag.f"),
                    function.last_differential,
                )

    def _goose_dataset(self) -> list:
        """Self-describing dataset: [["breaker", name, closed], ["op", ln, flag]...]"""
        registry = self.pointdb.registry
        data: list = [["ied", self.name]]
        for breaker in sorted(self._breakers):
            closed = registry.get_bool(self._status_handle(breaker), True)
            data.append(["breaker", breaker, closed])
        for ln_name, function in sorted(self._protection_by_ln.items()):
            if not isinstance(function, Cilo):
                data.append(["op", ln_name, bool(function.operated)])
        return data

    def _on_peer_goose(self, message) -> None:
        for entry in message.all_data:
            if (
                isinstance(entry, list)
                and len(entry) == 3
                and entry[0] == "breaker"
            ):
                breaker = str(entry[1])
                closed = bool(entry[2])
                if self.peer_breaker_status.get(breaker) is not closed:
                    self.peer_breaker_status[breaker] = closed
                    self._mark_inputs_dirty()

    # ------------------------------------------------------------------
    # Operate path
    # ------------------------------------------------------------------
    def operate_breaker(self, breaker: str, close: bool, source: str) -> bool:
        """Command a breaker; returns False when an interlock blocks it."""
        now = self.host.simulator.now
        if breaker not in self._breakers:
            self.rejected_operates.append((now, breaker, "not controllable"))
            return False
        if close and not self.engine.close_permitted(breaker):
            self.rejected_operates.append((now, breaker, "CILO interlock"))
            return False
        self.pointdb.write_command(
            self._breakers[breaker],
            close,
            writer=f"{self.name}:{source}",
            time_us=now,
        )
        self.operate_log.append((now, breaker, close, source))
        if self.goose_publisher is not None:
            self.goose_publisher.update(self._goose_dataset())
        return True

    def _on_trip(self, event: TripEvent) -> None:
        self.operate_breaker(event.breaker, close=False, source=event.function)

    # ------------------------------------------------------------------
    # MMS provider interface
    # ------------------------------------------------------------------
    def mms_identify(self) -> dict:
        return {
            "vendor": "SG-ML CyberRange",
            "model": "VirtualIED",
            "revision": "1.0",
            "name": self.name,
        }

    def mms_get_name_list(self, object_class: str, domain: str) -> list[str]:
        if object_class == "domain" or not domain:
            return list(self.model.ldevices)
        return self.model.references(prefix=domain)

    def mms_read(self, reference: str) -> Any:
        try:
            return self.model.read(reference)
        except DataModelError as exc:
            raise MmsError(str(exc)) from exc

    def mms_write(self, reference: str, value: Any) -> None:
        leaf = self.model.leaves.get(reference)
        if leaf is None:
            raise MmsError(f"unknown reference {reference!r}")
        if leaf.fc == "CO":
            breaker = self._breaker_for_control(reference)
            if breaker is None:
                raise MmsError(f"{reference}: no breaker mapping")
            if not self.operate_breaker(breaker, bool(value), source="mms"):
                raise MmsError(f"{reference}: operate blocked by interlock")
            leaf.value = bool(value)
            return
        if leaf.fc in ("SP", "CF"):
            leaf.value = leaf.typed(value)
            self._apply_setting_change(reference, leaf.value)
            return
        raise MmsError(f"{reference}: read-only (fc={leaf.fc})")

    def _breaker_for_control(self, reference: str) -> Optional[str]:
        """Resolve a CO-write reference to its breaker via the point map."""
        ln_prefix = reference.split(".", 1)[0]  # "LD/LN"
        for point in self.config.write_points():
            if point.scl_ref.split(".", 1)[0] == ln_prefix:
                breaker = _breaker_from_command_key(point.db_key)
                if breaker:
                    return breaker
        # Fallback: single-breaker IEDs accept any control reference.
        if len(self._breakers) == 1:
            return next(iter(self._breakers))
        return None

    def _apply_setting_change(self, reference: str, value: Any) -> None:
        """Runtime threshold changes take effect on the live function."""
        for ln_name, function in self._protection_by_ln.items():
            if isinstance(function, Cilo):
                continue
            if reference == self._setting_ref(ln_name, "StrVal.setMag.f"):
                function.threshold = float(value)
                self._mark_inputs_dirty()
            elif reference == self._setting_ref(ln_name, "OpDlTmms.setVal"):
                function.delay_us = int(value) * MS
                self._mark_inputs_dirty()

    # ------------------------------------------------------------------
    def _setting_ref(self, ln_name: str, suffix: str) -> str:
        for prefix, _ in self.model.ln_references.items():
            if prefix.endswith("/" + ln_name):
                return f"{prefix}.{suffix}"
        # Default to the first logical device.
        ld = self.model.ldevices[0] if self.model.ldevices else self.name
        return f"{ld}/{ln_name}.{suffix}"

    def _read_model_safe(self, reference: str) -> float:
        try:
            return float(self.model.read(reference))
        except (DataModelError, TypeError, ValueError):
            return 0.0

    def _write_model_safe(self, reference: str, value: Any) -> None:
        leaf = self.model.leaves.get(reference)
        if leaf is None:
            self.model.leaves[reference] = Leaf(reference=reference, value=value)
            return
        leaf.value = leaf.typed(value)


def _breaker_from_command_key(db_key: str) -> str:
    """``cmd/<breaker>/close`` → ``<breaker>`` (empty if not a command)."""
    parts = db_key.split("/")
    if len(parts) == 3 and parts[0] == "cmd":
        return parts[1]
    return ""


def _first_sample(subscriber: RSvSubscriber) -> float:
    message = subscriber.last_message
    if message is None or not message.samples:
        return 0.0
    try:
        return float(message.samples[0])
    except (TypeError, ValueError):
        return 0.0
