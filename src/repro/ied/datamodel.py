"""IEC 61850 data model instance, built from an ICD file.

The model is a flat map of fully qualified object references
(``<IED><LDinst>/<LN>.<DO>.<da path>``) to typed leaves.  Flatness makes
MMS read/write and browse trivial while the reference strings preserve the
standard's hierarchy.

For each logical node the builder instantiates the data objects named in
the ICD's ``LNodeType`` template when available, and falls back to the
standard content of the LN class (IEC 61850-7-4) otherwise — real ICDs are
frequently sparse, and the paper's toolchain likewise enables features per
LN class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.scl.model import DataTypeTemplates, Ied, LogicalNode
from repro.scl.paths import ldevice_name


class DataModelError(Exception):
    """Unknown reference or invalid write."""


@dataclass
class Leaf:
    """One data attribute with its functional constraint."""

    reference: str
    value: Any
    fc: str = "ST"  # ST status, MX measurement, CO control, SP setpoint, CF config
    b_type: str = "BOOLEAN"

    def typed(self, value: Any) -> Any:
        if self.b_type == "BOOLEAN":
            return bool(value)
        if self.b_type in ("INT8", "INT16", "INT32", "INT64", "Enum"):
            return int(value)
        if self.b_type in ("FLOAT32", "FLOAT64"):
            return float(value)
        return value


#: Standard data objects instantiated per LN class:
#: DO name → list of (attribute path, fc, bType, default).
CLASS_CONTENT: dict[str, dict[str, list[tuple[str, str, str, Any]]]] = {
    "LLN0": {
        "Mod": [("stVal", "ST", "Enum", 1)],
        "Beh": [("stVal", "ST", "Enum", 1)],
        "Health": [("stVal", "ST", "Enum", 1)],
    },
    "LPHD": {
        "PhyHealth": [("stVal", "ST", "Enum", 1)],
        "Proxy": [("stVal", "ST", "BOOLEAN", False)],
    },
    "XCBR": {
        "Pos": [
            ("stVal", "ST", "BOOLEAN", True),  # True = closed
            ("q", "ST", "INT16", 0),
            ("ctlVal", "CO", "BOOLEAN", True),
        ],
        "Oper": [("ctlVal", "CO", "BOOLEAN", True)],
        "BlkOpn": [("stVal", "ST", "BOOLEAN", False)],
        "BlkCls": [("stVal", "ST", "BOOLEAN", False)],
        "OpCnt": [("stVal", "ST", "INT32", 0)],
    },
    "XSWI": {
        "Pos": [
            ("stVal", "ST", "BOOLEAN", True),
            ("ctlVal", "CO", "BOOLEAN", True),
        ],
        "Oper": [("ctlVal", "CO", "BOOLEAN", True)],
    },
    "CSWI": {
        "Pos": [
            ("stVal", "ST", "BOOLEAN", True),
            ("ctlVal", "CO", "BOOLEAN", True),
        ],
        "Oper": [("ctlVal", "CO", "BOOLEAN", True)],
    },
    "CILO": {
        "EnaOpn": [("stVal", "ST", "BOOLEAN", True)],
        "EnaCls": [("stVal", "ST", "BOOLEAN", True)],
    },
    "MMXU": {
        "TotW": [("mag.f", "MX", "FLOAT32", 0.0)],
        "TotVAr": [("mag.f", "MX", "FLOAT32", 0.0)],
        "Hz": [("mag.f", "MX", "FLOAT32", 50.0)],
        "A": [("phsA.cVal.mag.f", "MX", "FLOAT32", 0.0)],
        "PhV": [("phsA.cVal.mag.f", "MX", "FLOAT32", 0.0)],
    },
    "MMTR": {
        "TotWh": [("actVal", "ST", "INT64", 0)],
    },
    "PTOC": {
        "Str": [("general", "ST", "BOOLEAN", False)],
        "Op": [("general", "ST", "BOOLEAN", False)],
        "StrVal": [("setMag.f", "SP", "FLOAT32", 0.0)],
        "OpDlTmms": [("setVal", "SP", "INT32", 100)],
    },
    "PTOV": {
        "Str": [("general", "ST", "BOOLEAN", False)],
        "Op": [("general", "ST", "BOOLEAN", False)],
        "StrVal": [("setMag.f", "SP", "FLOAT32", 0.0)],
        "OpDlTmms": [("setVal", "SP", "INT32", 100)],
    },
    "PTUV": {
        "Str": [("general", "ST", "BOOLEAN", False)],
        "Op": [("general", "ST", "BOOLEAN", False)],
        "StrVal": [("setMag.f", "SP", "FLOAT32", 0.0)],
        "OpDlTmms": [("setVal", "SP", "INT32", 100)],
    },
    "PDIF": {
        "Str": [("general", "ST", "BOOLEAN", False)],
        "Op": [("general", "ST", "BOOLEAN", False)],
        "DifAClc": [("mag.f", "MX", "FLOAT32", 0.0)],
        "StrVal": [("setMag.f", "SP", "FLOAT32", 0.0)],
        "OpDlTmms": [("setVal", "SP", "INT32", 100)],
    },
    "GGIO": {
        "Ind1": [("stVal", "ST", "BOOLEAN", False)],
        "Ind2": [("stVal", "ST", "BOOLEAN", False)],
        "AnIn1": [("mag.f", "MX", "FLOAT32", 0.0)],
        "AnIn2": [("mag.f", "MX", "FLOAT32", 0.0)],
        "SPCSO1": [("stVal", "ST", "BOOLEAN", False), ("ctlVal", "CO", "BOOLEAN", False)],
    },
}

#: DOType CDC → default attribute layout when templates are present but thin.
_FALLBACK_ATTRIBUTE = [("stVal", "ST", "BOOLEAN", False)]


class IedDataModel:
    """All leaves of one IED, addressable by object reference."""

    def __init__(self, ied_name: str) -> None:
        self.ied_name = ied_name
        self.leaves: dict[str, Leaf] = {}
        self.ldevices: list[str] = []
        self.ln_references: dict[str, str] = {}  # LN name → "LD/LN" prefix

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_icd(
        cls, ied: Ied, templates: Optional[DataTypeTemplates] = None
    ) -> "IedDataModel":
        model = cls(ied.name)
        for ldevice in ied.iter_ldevices():
            ld_name = ldevice_name(ied.name, ldevice.inst)
            model.ldevices.append(ld_name)
            for node in ldevice.logical_nodes:
                model._instantiate_ln(ld_name, node, templates)
        return model

    def _instantiate_ln(
        self,
        ld_name: str,
        node: LogicalNode,
        templates: Optional[DataTypeTemplates],
    ) -> None:
        ln_name = node.name if not node.is_ln0 else "LLN0"
        self.ln_references[f"{ld_name}/{ln_name}"] = node.ln_class
        content = CLASS_CONTENT.get(node.ln_class, {})
        do_names: list[str] = list(content.keys())
        # Honour the LNodeType template's DO list when available.
        if templates is not None and node.ln_type in templates.lnode_types:
            template_dos = list(templates.lnode_types[node.ln_type].dos.keys())
            if template_dos:
                do_names = template_dos
        for do_name in do_names:
            attributes = content.get(do_name, _FALLBACK_ATTRIBUTE)
            for da_path, fc, b_type, default in attributes:
                reference = f"{ld_name}/{ln_name}.{do_name}.{da_path}"
                self.leaves[reference] = Leaf(
                    reference=reference, value=default, fc=fc, b_type=b_type
                )
        # Apply DOI/DAI initial values from the ICD.
        for doi in node.dois:
            for attribute in doi.attributes:
                reference = f"{ld_name}/{ln_name}.{doi.name}.{attribute.name}"
                if attribute.value == "":
                    continue
                existing = self.leaves.get(reference)
                value = _parse_initial(attribute.value)
                if existing is not None:
                    existing.value = existing.typed(value)
                else:
                    self.leaves[reference] = Leaf(
                        reference=reference,
                        value=value,
                        fc=attribute.fc or "ST",
                        b_type=attribute.b_type or _infer_btype(value),
                    )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def read(self, reference: str) -> Any:
        leaf = self.leaves.get(reference)
        if leaf is None:
            raise DataModelError(f"unknown reference {reference!r}")
        return leaf.value

    def write(self, reference: str, value: Any) -> None:
        leaf = self.leaves.get(reference)
        if leaf is None:
            raise DataModelError(f"unknown reference {reference!r}")
        leaf.value = leaf.typed(value)

    def exists(self, reference: str) -> bool:
        return reference in self.leaves

    def references(self, prefix: str = "") -> list[str]:
        if not prefix:
            return sorted(self.leaves)
        return sorted(ref for ref in self.leaves if ref.startswith(prefix))

    def ln_classes(self) -> set[str]:
        return set(self.ln_references.values())

    def find_ln(self, ln_class: str) -> list[str]:
        """All ``LD/LN`` prefixes whose class matches."""
        return sorted(
            prefix
            for prefix, klass in self.ln_references.items()
            if klass == ln_class
        )

    def snapshot(self) -> dict[str, Any]:
        return {reference: leaf.value for reference, leaf in self.leaves.items()}


def _parse_initial(text: str) -> Any:
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _infer_btype(value: Any) -> str:
    if isinstance(value, bool):
        return "BOOLEAN"
    if isinstance(value, int):
        return "INT32"
    if isinstance(value, float):
        return "FLOAT32"
    return "VisString255"
