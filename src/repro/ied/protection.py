"""Protection functions (paper Table II).

Each function follows the standard start/operate sequence: when the
measured quantity crosses its threshold the function *starts* (``Str``);
if the condition persists for the configured operate delay it *operates*
(``Op``) and trips its breaker.  Dropping below the threshold before the
delay elapses resets the start.

Functions read measurements through callables so they are agnostic about
where values come from (data model, R-SV stream, point database).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.kernel import MS, SimTime


@dataclass(frozen=True)
class TripEvent:
    """Emitted when a protection function operates."""

    time_us: int
    ied_name: str
    function: str  # LN name, e.g. "PTOC1"
    fn_type: str
    breaker: str
    measured: float
    threshold: float

    def describe(self) -> str:
        return (
            f"[{self.time_us / 1e6:.3f}s] {self.ied_name}/{self.function} "
            f"({self.fn_type}) tripped breaker {self.breaker}: "
            f"measured {self.measured:.4g} vs threshold {self.threshold:.4g}"
        )


class ProtectionFunction:
    """Base start/operate timing logic shared by the threshold functions."""

    fn_type = "BASE"

    def __init__(
        self,
        ln_name: str,
        breaker: str,
        threshold: float,
        delay_ms: float,
        measure: Callable[[], float],
    ) -> None:
        self.ln_name = ln_name
        self.breaker = breaker
        self.threshold = threshold
        self.delay_us = int(delay_ms * MS)
        self.measure = measure
        self.started = False
        self.operated = False
        self._start_time_us: Optional[int] = None
        self.last_measured = 0.0

    # Subclasses define the pickup condition.
    def _pickup(self, value: float) -> bool:
        raise NotImplementedError

    def evaluate(self, now_us: SimTime) -> Optional[TripEvent]:
        """Advance the start/operate state machine; maybe emit a trip."""
        value = self.measure()
        self.last_measured = value
        if not self._pickup(value):
            self.started = False
            self._start_time_us = None
            # A cleared condition resets a previous operate so the function
            # can act again after reclosing.
            self.operated = False
            return None
        if not self.started:
            self.started = True
            self._start_time_us = now_us
            if self.delay_us > 0:
                return None
        if self.operated:
            return None
        assert self._start_time_us is not None
        if now_us - self._start_time_us >= self.delay_us:
            self.operated = True
            return TripEvent(
                time_us=now_us,
                ied_name="",
                function=self.ln_name,
                fn_type=self.fn_type,
                breaker=self.breaker,
                measured=value,
                threshold=self.threshold,
            )
        return None


class Ptoc(ProtectionFunction):
    """Time over-current: trips when current exceeds the threshold."""

    fn_type = "PTOC"

    def _pickup(self, value: float) -> bool:
        return value > self.threshold


class Ptov(ProtectionFunction):
    """Over-voltage: trips when bus voltage exceeds the threshold."""

    fn_type = "PTOV"

    def _pickup(self, value: float) -> bool:
        return value > self.threshold


class Ptuv(ProtectionFunction):
    """Under-voltage: trips when bus voltage drops below the threshold.

    A fully dead bus (0 voltage) does not trip — the breaker is presumed
    already open / the bay de-energized, matching practical relay behaviour
    (dead-line blocking).
    """

    fn_type = "PTUV"

    def _pickup(self, value: float) -> bool:
        return 0.0 < value < self.threshold


class Pdif(ProtectionFunction):
    """Differential protection across two measurement points.

    ``measure`` returns the local current; ``remote`` the far-end current
    (delivered by R-SV from the partner substation's IED, per §III-B).
    Trips when ``|local - remote|`` exceeds the threshold.  Returns no trip
    while the remote stream is stale (``remote_healthy`` false) — a
    differential scheme without channel data must block.
    """

    fn_type = "PDIF"

    def __init__(
        self,
        ln_name: str,
        breaker: str,
        threshold: float,
        delay_ms: float,
        measure: Callable[[], float],
        remote: Callable[[], float],
        remote_healthy: Callable[[], bool],
    ) -> None:
        super().__init__(ln_name, breaker, threshold, delay_ms, measure)
        self.remote = remote
        self.remote_healthy = remote_healthy
        self.last_differential = 0.0

    def _pickup(self, value: float) -> bool:
        if not self.remote_healthy():
            self.last_differential = 0.0
            return False
        self.last_differential = abs(value - self.remote())
        return self.last_differential > self.threshold


class Cilo:
    """Interlocking: blocks closing a breaker while a dependency is open.

    Paper Table II: "Prevents a circuit breaker to be closed when a certain
    circuit breaker is open."  Consulted by the IED's operate path rather
    than by the scan loop.
    """

    fn_type = "CILO"

    def __init__(
        self,
        ln_name: str,
        breaker: str,
        interlock_breaker: str,
        interlock_closed: Callable[[], bool],
    ) -> None:
        self.ln_name = ln_name
        self.breaker = breaker
        self.interlock_breaker = interlock_breaker
        self.interlock_closed = interlock_closed
        self.blocked_count = 0

    def close_permitted(self) -> bool:
        permitted = bool(self.interlock_closed())
        if not permitted:
            self.blocked_count += 1
        return permitted

    def open_permitted(self) -> bool:
        return True  # opening is always allowed


class ProtectionEngine:
    """Evaluates all protection functions each IED scan."""

    def __init__(self, ied_name: str) -> None:
        self.ied_name = ied_name
        self.functions: list[ProtectionFunction] = []
        self.interlocks: list[Cilo] = []
        self.trips: list[TripEvent] = []
        self.on_trip: Optional[Callable[[TripEvent], None]] = None

    def add(self, function: ProtectionFunction) -> None:
        self.functions.append(function)

    def add_interlock(self, interlock: Cilo) -> None:
        self.interlocks.append(interlock)

    def interlocks_for(self, breaker: str) -> list[Cilo]:
        return [ilk for ilk in self.interlocks if ilk.breaker == breaker]

    def close_permitted(self, breaker: str) -> bool:
        """All CILO functions guarding ``breaker`` must permit the close."""
        return all(ilk.close_permitted() for ilk in self.interlocks_for(breaker))

    def evaluate(self, now_us: SimTime) -> list[TripEvent]:
        events = []
        for function in self.functions:
            event = function.evaluate(now_us)
            if event is not None:
                event = TripEvent(
                    time_us=event.time_us,
                    ied_name=self.ied_name,
                    function=event.function,
                    fn_type=event.fn_type,
                    breaker=event.breaker,
                    measured=event.measured,
                    threshold=event.threshold,
                )
                self.trips.append(event)
                events.append(event)
                if self.on_trip is not None:
                    self.on_trip(event)
        return events
