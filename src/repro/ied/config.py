"""Runtime configuration dataclasses for a virtual IED.

These are the in-memory form of the SG-ML *IED Config XML* (paper §III-A):
protection thresholds and the cyber↔physical point mapping that SCL files
do not carry.  :mod:`repro.sgml.ied_config` parses the XML into these
structures; the Virtual IED Builder hands them to :class:`VirtualIed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PointMapping:
    """Maps an IEC 61850 object reference to a point-database key.

    ``direction`` is from the IED's point of view: ``read`` points are
    measurements/statuses synced database→data-model each scan; ``write``
    points are command outputs (breaker open/close).
    """

    scl_ref: str  # e.g. "GIED1LD0/MMXU1.TotW.mag.f"
    db_key: str  # e.g. "meas/LineG1/p_mw"
    direction: str = "read"  # "read" | "write"
    scale: float = 1.0


@dataclass(frozen=True)
class ProtectionSettings:
    """Thresholds for one protection logical node (paper Table II).

    Fields by function type:

    * ``PTOC`` — ``threshold`` is the current limit (kA); ``meas_ref`` the
      local current measurement reference.
    * ``PTOV``/``PTUV`` — ``threshold`` is the bus-voltage limit (pu).
    * ``PDIF`` — ``threshold`` is the differential current limit (kA);
      ``remote_sv_id`` names the R-SV stream carrying the far-end current.
    * ``CILO`` — ``interlock_breaker`` must be closed for ``breaker`` to be
      allowed to close (no threshold).
    """

    ln_name: str  # e.g. "PTOC1"
    fn_type: str  # PTOC | PTOV | PTUV | PDIF | CILO
    breaker: str  # point-db breaker name this function operates
    meas_ref: str = ""  # data-model reference of the driving measurement
    threshold: float = 0.0
    delay_ms: float = 100.0
    remote_sv_id: str = ""  # PDIF only
    interlock_breaker: str = ""  # CILO only


@dataclass(frozen=True)
class GooseLinkConfig:
    """GOOSE publishing configuration for the IED."""

    gocb_ref: str
    dataset: str
    #: Data-model references whose values form the dataset, in order.
    members: tuple[str, ...] = ()


@dataclass
class IedRuntimeConfig:
    """Everything the Virtual IED Builder assembles for one IED."""

    ied_name: str
    points: list[PointMapping] = field(default_factory=list)
    protections: list[ProtectionSettings] = field(default_factory=list)
    goose: GooseLinkConfig | None = None
    #: gocbRefs of peers this IED subscribes to (breaker-status sharing).
    goose_subscriptions: list[str] = field(default_factory=list)
    #: R-SV stream published by this IED: (sv_id, measurement reference).
    sv_publish: tuple[str, str] | None = None
    scan_interval_ms: float = 20.0

    def read_points(self) -> list[PointMapping]:
        return [point for point in self.points if point.direction == "read"]

    def write_points(self) -> list[PointMapping]:
        return [point for point in self.points if point.direction == "write"]
