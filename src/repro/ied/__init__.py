"""Virtual IED (intelligent electronic device).

The paper's virtual IEDs are C programs built on libiec61850, instantiated
from ICD files: "if the ICD file contains definition of logical node PTOV,
over-voltage protection function is enabled" (§III-B).  This package
reproduces the complete device:

* :mod:`repro.ied.datamodel` — IEC 61850 data model instance built from an
  ICD (logical devices → logical nodes → data objects → attributes).
* :mod:`repro.ied.protection` — the Table II protection functions: PTOC,
  PTOV, PTUV, PDIF and CILO interlocking.
* :mod:`repro.ied.device` — :class:`VirtualIed` wiring the data model to
  MMS (server), GOOSE (status publishing/subscription), R-SV (measurement
  exchange for PDIF) and the point database (power-simulator coupling).
"""

from repro.ied.config import (
    GooseLinkConfig,
    IedRuntimeConfig,
    PointMapping,
    ProtectionSettings,
)
from repro.ied.datamodel import DataModelError, IedDataModel, Leaf
from repro.ied.device import VirtualIed
from repro.ied.protection import (
    Cilo,
    Pdif,
    ProtectionEngine,
    ProtectionFunction,
    Ptoc,
    Ptov,
    Ptuv,
    TripEvent,
)

__all__ = [
    "Cilo",
    "DataModelError",
    "GooseLinkConfig",
    "IedDataModel",
    "IedRuntimeConfig",
    "Leaf",
    "Pdif",
    "PointMapping",
    "ProtectionEngine",
    "ProtectionFunction",
    "ProtectionSettings",
    "Ptoc",
    "Ptov",
    "Ptuv",
    "TripEvent",
    "VirtualIed",
]
