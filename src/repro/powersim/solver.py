"""Newton-Raphson AC power flow.

Implementation notes
--------------------
* Closed bus-bus switches fuse buses (union-find), so operating a circuit
  breaker from the cyber side restructures the next snapshot — the coupling
  mechanism the paper's case studies rely on.
* Per-unit conversion uses the system base (``Network.sn_mva``) and each
  bus's nominal voltage.  Transformers use the standard off-nominal-tap
  branch model.
* Islands without an in-service external grid (or with all sources
  disconnected) are de-energized: their buses report 0 voltage, which the
  virtual IEDs observe as a dead bus — the physically meaningful outcome of
  e.g. a breaker-open attack.
* The Jacobian uses the standard complex-matrix formulation (dS/dVa,
  dS/dVm).  Networks at cyber-range scale are small, so dense algebra is
  both simplest and fastest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.powersim.network import Network, PowerSimError, SwitchType
from repro.powersim.results import (
    BranchFlow,
    BusResult,
    PowerFlowDiverged,
    PowerFlowResult,
)

# Bus type codes.
_PQ, _PV, _SLACK = 0, 1, 2


@dataclass
class _Branch:
    """Reduced-system branch (line or transformer) ready for Ybus."""

    name: str
    kind: str  # "line" | "trafo"
    from_node: int
    to_node: int
    ys: complex  # series admittance, pu
    b_charging: float  # total shunt susceptance, pu
    tap: float  # off-nominal ratio on the from (HV) side
    from_bus: int  # original bus indices, for reporting
    to_bus: int
    max_i_ka: float = 0.0
    sn_mva: float = 0.0  # trafo rating, for loading


class _UnionFind:
    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def run_power_flow(
    net: Network, tol: float = 1e-8, max_iter: int = 30
) -> PowerFlowResult:
    """Solve the network; returns a :class:`PowerFlowResult` snapshot."""
    n_bus = len(net.buses)
    if n_bus == 0:
        raise PowerSimError("network has no buses")

    fused = _fuse_buses(net)
    rep_of = [fused.find(i) for i in range(n_bus)]
    branches = _build_branches(net, rep_of)
    nodes = sorted({rep_of[b.index] for b in net.buses if b.in_service})
    node_index = {rep: i for i, rep in enumerate(nodes)}
    n = len(nodes)

    p_spec, q_spec, bus_type, vm_spec, va_spec = _injections(net, rep_of, node_index)
    energized = _energized_nodes(branches, node_index, bus_type, n)

    # Restrict the solve to energized nodes.
    solve_nodes = [i for i in range(n) if energized[i]]
    solve_index = {node: k for k, node in enumerate(solve_nodes)}
    ns = len(solve_nodes)

    result = PowerFlowResult(converged=True, iterations=0)
    vm = np.zeros(n)
    va = np.zeros(n)

    if ns:
        ybus = _build_ybus(net, branches, node_index, solve_index, ns)
        v0 = np.ones(ns, dtype=complex)
        types = np.array([bus_type[i] for i in solve_nodes])
        for k, node in enumerate(solve_nodes):
            if bus_type[node] in (_PV, _SLACK):
                v0[k] = vm_spec[node] * np.exp(1j * va_spec[node])
        s_spec = np.array(
            [p_spec[i] + 1j * q_spec[i] for i in solve_nodes], dtype=complex
        )
        voltages, iterations = _newton_raphson(
            ybus, v0, s_spec, types, tol, max_iter
        )
        result.iterations = iterations
        for k, node in enumerate(solve_nodes):
            vm[node] = abs(voltages[k])
            va[node] = math.degrees(np.angle(voltages[k]))
    else:
        voltages = np.zeros(0, dtype=complex)

    _fill_bus_results(net, result, rep_of, node_index, energized, vm, va)
    _fill_branch_flows(
        net, result, branches, node_index, solve_index, energized, voltages
    )
    _fill_slack_summary(
        net, result, rep_of, node_index, solve_index, energized, voltages, branches
    )
    result._total_load_p = sum(
        load.p_mw * load.scaling
        for load in net.loads
        if load.in_service
        and energized.get(node_index.get(rep_of[load.bus], -1), False)
    )
    return result


# ---------------------------------------------------------------------------
# Topology processing
# ---------------------------------------------------------------------------


def _fuse_buses(net: Network) -> _UnionFind:
    fused = _UnionFind(len(net.buses))
    for switch in net.switches:
        if switch.type is SwitchType.BUS_BUS and switch.closed:
            if (
                net.buses[switch.bus].in_service
                and net.buses[switch.other_bus].in_service
            ):
                fused.union(switch.bus, switch.other_bus)
    return fused


def _line_in_service(net: Network, line_index: int) -> bool:
    line = net.lines[line_index]
    if not line.in_service:
        return False
    if not net.buses[line.from_bus].in_service:
        return False
    if not net.buses[line.to_bus].in_service:
        return False
    for switch in net.switches:
        if (
            switch.type is SwitchType.BUS_LINE
            and switch.element == line_index
            and not switch.closed
        ):
            return False
    return True


def _build_branches(net: Network, rep_of: list[int]) -> list[_Branch]:
    branches: list[_Branch] = []
    for line in net.lines:
        if not _line_in_service(net, line.index):
            continue
        from_node, to_node = rep_of[line.from_bus], rep_of[line.to_bus]
        if from_node == to_node:
            continue  # shorted by closed switches; zero-impedance jumper
        vn = net.buses[line.from_bus].vn_kv
        z_base = vn * vn / net.sn_mva
        z = complex(line.r_ohm, line.x_ohm) / z_base
        b_pu = line.b_us * 1e-6 * z_base
        branches.append(
            _Branch(
                name=line.name,
                kind="line",
                from_node=from_node,
                to_node=to_node,
                ys=1.0 / z,
                b_charging=b_pu,
                tap=1.0,
                from_bus=line.from_bus,
                to_bus=line.to_bus,
                max_i_ka=line.max_i_ka,
            )
        )
    for trafo in net.transformers:
        if not trafo.in_service:
            continue
        if not (
            net.buses[trafo.hv_bus].in_service and net.buses[trafo.lv_bus].in_service
        ):
            continue
        from_node, to_node = rep_of[trafo.hv_bus], rep_of[trafo.lv_bus]
        if from_node == to_node:
            continue
        z_mag = trafo.vk_percent / 100.0 * net.sn_mva / trafo.sn_mva
        r = trafo.vkr_percent / 100.0 * net.sn_mva / trafo.sn_mva
        x = math.sqrt(max(z_mag * z_mag - r * r, 1e-12))
        tap = 1.0 + trafo.tap_pos * trafo.tap_step_percent / 100.0
        branches.append(
            _Branch(
                name=trafo.name,
                kind="trafo",
                from_node=from_node,
                to_node=to_node,
                ys=1.0 / complex(r, x),
                b_charging=0.0,
                tap=tap,
                from_bus=trafo.hv_bus,
                to_bus=trafo.lv_bus,
                sn_mva=trafo.sn_mva,
            )
        )
    return branches


def _injections(
    net: Network, rep_of: list[int], node_index: dict[int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    n = len(node_index)
    p_spec = np.zeros(n)
    q_spec = np.zeros(n)
    bus_type = np.full(n, _PQ)
    vm_spec = np.ones(n)
    va_spec = np.zeros(n)

    def node(bus: int) -> int:
        return node_index[rep_of[bus]]

    for load in net.loads:
        if load.in_service and net.buses[load.bus].in_service:
            p_spec[node(load.bus)] -= load.p_mw * load.scaling / net.sn_mva
            q_spec[node(load.bus)] -= load.q_mvar * load.scaling / net.sn_mva
    for sgen in net.sgens:
        if sgen.in_service and net.buses[sgen.bus].in_service:
            p_spec[node(sgen.bus)] += sgen.p_mw * sgen.scaling / net.sn_mva
            q_spec[node(sgen.bus)] += sgen.q_mvar * sgen.scaling / net.sn_mva
    for shunt in net.shunts:
        if shunt.in_service and net.buses[shunt.bus].in_service:
            p_spec[node(shunt.bus)] -= shunt.p_mw / net.sn_mva
            q_spec[node(shunt.bus)] -= shunt.q_mvar / net.sn_mva
    for gen in net.gens:
        if gen.in_service and net.buses[gen.bus].in_service:
            idx = node(gen.bus)
            p_spec[idx] += gen.p_mw / net.sn_mva
            if bus_type[idx] != _SLACK:
                bus_type[idx] = _PV
            vm_spec[idx] = gen.vm_pu
    for grid in net.ext_grids:
        if grid.in_service and net.buses[grid.bus].in_service:
            idx = node(grid.bus)
            vm_spec[idx] = grid.vm_pu
            va_spec[idx] = math.radians(grid.va_degree)
            bus_type[idx] = _SLACK
    return p_spec, q_spec, bus_type, vm_spec, va_spec


def _energized_nodes(
    branches: list[_Branch],
    node_index: dict[int, int],
    bus_type: np.ndarray,
    n: int,
) -> dict[int, bool]:
    """BFS from slack nodes over in-service branches."""
    adjacency: dict[int, list[int]] = {i: [] for i in range(n)}
    for branch in branches:
        a = node_index[branch.from_node]
        b = node_index[branch.to_node]
        adjacency[a].append(b)
        adjacency[b].append(a)
    energized = {i: False for i in range(n)}
    frontier = [i for i in range(n) if bus_type[i] == _SLACK]
    for start in frontier:
        energized[start] = True
    while frontier:
        current = frontier.pop()
        for neighbour in adjacency[current]:
            if not energized[neighbour]:
                energized[neighbour] = True
                frontier.append(neighbour)
    return energized


def _build_ybus(
    net: Network,
    branches: list[_Branch],
    node_index: dict[int, int],
    solve_index: dict[int, int],
    ns: int,
) -> np.ndarray:
    ybus = np.zeros((ns, ns), dtype=complex)
    for branch in branches:
        a = node_index[branch.from_node]
        b = node_index[branch.to_node]
        if a not in solve_index or b not in solve_index:
            continue
        i, j = solve_index[a], solve_index[b]
        ys = branch.ys
        bc = 1j * branch.b_charging / 2.0
        tap = branch.tap
        ybus[i, i] += (ys + bc) / (tap * tap)
        ybus[j, j] += ys + bc
        ybus[i, j] -= ys / tap
        ybus[j, i] -= ys / tap
    return ybus


# ---------------------------------------------------------------------------
# Newton-Raphson core
# ---------------------------------------------------------------------------


def _newton_raphson(
    ybus: np.ndarray,
    v0: np.ndarray,
    s_spec: np.ndarray,
    types: np.ndarray,
    tol: float,
    max_iter: int,
) -> tuple[np.ndarray, int]:
    v = v0.copy()
    pv = np.flatnonzero(types == _PV)
    pq = np.flatnonzero(types == _PQ)
    pvpq = np.concatenate([pv, pq])

    if pvpq.size == 0:
        return v, 0

    for iteration in range(1, max_iter + 1):
        i_bus = ybus @ v
        s_calc = v * np.conj(i_bus)
        mismatch = s_calc - s_spec
        f = np.concatenate([mismatch[pvpq].real, mismatch[pq].imag])
        if np.max(np.abs(f)) < tol:
            return v, iteration - 1

        diag_v = np.diag(v)
        diag_i = np.diag(i_bus)
        v_norm = v / np.abs(v)
        diag_vnorm = np.diag(v_norm)
        ds_dva = 1j * diag_v @ np.conj(diag_i - ybus @ diag_v)
        ds_dvm = diag_v @ np.conj(ybus @ diag_vnorm) + np.conj(diag_i) @ diag_vnorm

        j11 = ds_dva[np.ix_(pvpq, pvpq)].real
        j12 = ds_dvm[np.ix_(pvpq, pq)].real
        j21 = ds_dva[np.ix_(pq, pvpq)].imag
        j22 = ds_dvm[np.ix_(pq, pq)].imag
        jacobian = np.block([[j11, j12], [j21, j22]])

        try:
            dx = np.linalg.solve(jacobian, f)
        except np.linalg.LinAlgError as exc:
            raise PowerFlowDiverged(f"singular Jacobian: {exc}") from exc

        n_pvpq = pvpq.size
        va = np.angle(v)
        vm = np.abs(v)
        va[pvpq] -= dx[:n_pvpq]
        vm[pq] -= dx[n_pvpq:]
        v = vm * np.exp(1j * va)

    raise PowerFlowDiverged(
        f"no convergence after {max_iter} iterations "
        f"(max mismatch {np.max(np.abs(f)):.3e})"
    )


# ---------------------------------------------------------------------------
# Result assembly
# ---------------------------------------------------------------------------


def _fill_bus_results(
    net: Network,
    result: PowerFlowResult,
    rep_of: list[int],
    node_index: dict[int, int],
    energized: dict[int, bool],
    vm: np.ndarray,
    va: np.ndarray,
) -> None:
    for bus in net.buses:
        if not bus.in_service:
            result.buses[bus.name] = BusResult(
                name=bus.name, vm_pu=0.0, va_degree=0.0, p_mw=0.0, q_mvar=0.0,
                energized=False,
            )
            continue
        node = node_index[rep_of[bus.index]]
        is_on = energized[node]
        p_inj = 0.0
        q_inj = 0.0
        for load in net.loads:
            if load.bus == bus.index and load.in_service:
                p_inj -= load.p_mw * load.scaling
                q_inj -= load.q_mvar * load.scaling
        for sgen in net.sgens:
            if sgen.bus == bus.index and sgen.in_service:
                p_inj += sgen.p_mw * sgen.scaling
                q_inj += sgen.q_mvar * sgen.scaling
        for gen in net.gens:
            if gen.bus == bus.index and gen.in_service:
                p_inj += gen.p_mw
        result.buses[bus.name] = BusResult(
            name=bus.name,
            vm_pu=float(vm[node]) if is_on else 0.0,
            va_degree=float(va[node]) if is_on else 0.0,
            p_mw=p_inj if is_on else 0.0,
            q_mvar=q_inj if is_on else 0.0,
            energized=is_on,
        )


def _fill_branch_flows(
    net: Network,
    result: PowerFlowResult,
    branches: list[_Branch],
    node_index: dict[int, int],
    solve_index: dict[int, int],
    energized: dict[int, bool],
    voltages: np.ndarray,
) -> None:
    live = {branch.name: branch for branch in branches}

    def flow_for(branch: _Branch) -> BranchFlow:
        a = node_index[branch.from_node]
        b = node_index[branch.to_node]
        from_name = net.buses[branch.from_bus].name
        to_name = net.buses[branch.to_bus].name
        if not (energized.get(a) and energized.get(b)):
            return _dead_flow(branch.name, from_name, to_name, in_service=True)
        vf = voltages[solve_index[a]]
        vt = voltages[solve_index[b]]
        ys = branch.ys
        bc = 1j * branch.b_charging / 2.0
        tap = branch.tap
        i_from = (ys + bc) / (tap * tap) * vf - ys / tap * vt
        i_to = (ys + bc) * vt - ys / tap * vf
        s_from = vf * np.conj(i_from) * net.sn_mva
        s_to = vt * np.conj(i_to) * net.sn_mva
        i_base_from = net.sn_mva / (math.sqrt(3.0) * net.buses[branch.from_bus].vn_kv)
        i_base_to = net.sn_mva / (math.sqrt(3.0) * net.buses[branch.to_bus].vn_kv)
        i_from_ka = abs(i_from) * i_base_from
        i_to_ka = abs(i_to) * i_base_to
        if branch.kind == "line":
            limit = branch.max_i_ka if branch.max_i_ka > 0 else 1.0
            loading = max(i_from_ka, i_to_ka) / limit * 100.0
        else:
            loading = max(abs(s_from), abs(s_to)) / branch.sn_mva * 100.0
        return BranchFlow(
            name=branch.name,
            from_bus=from_name,
            to_bus=to_name,
            p_from_mw=float(s_from.real),
            q_from_mvar=float(s_from.imag),
            p_to_mw=float(s_to.real),
            q_to_mvar=float(s_to.imag),
            i_from_ka=float(i_from_ka),
            i_to_ka=float(i_to_ka),
            loading_percent=float(loading),
        )

    for line in net.lines:
        branch = live.get(line.name)
        if branch is not None and branch.kind == "line":
            result.lines[line.name] = flow_for(branch)
        else:
            in_service = _line_in_service(net, line.index)
            result.lines[line.name] = _dead_flow(
                line.name,
                net.buses[line.from_bus].name,
                net.buses[line.to_bus].name,
                in_service=in_service,
            )
    for trafo in net.transformers:
        branch = live.get(trafo.name)
        if branch is not None and branch.kind == "trafo":
            result.transformers[trafo.name] = flow_for(branch)
        else:
            result.transformers[trafo.name] = _dead_flow(
                trafo.name,
                net.buses[trafo.hv_bus].name,
                net.buses[trafo.lv_bus].name,
                in_service=trafo.in_service,
            )


def _dead_flow(
    name: str, from_bus: str, to_bus: str, in_service: bool
) -> BranchFlow:
    return BranchFlow(
        name=name,
        from_bus=from_bus,
        to_bus=to_bus,
        p_from_mw=0.0,
        q_from_mvar=0.0,
        p_to_mw=0.0,
        q_to_mvar=0.0,
        i_from_ka=0.0,
        i_to_ka=0.0,
        loading_percent=0.0,
        in_service=in_service,
    )


def _fill_slack_summary(
    net: Network,
    result: PowerFlowResult,
    rep_of: list[int],
    node_index: dict[int, int],
    solve_index: dict[int, int],
    energized: dict[int, bool],
    voltages: np.ndarray,
    branches: list[_Branch],
) -> None:
    """Slack power = total losses + load - specified generation."""
    if voltages.size == 0:
        return
    ybus = _build_ybus(net, branches, node_index, solve_index, len(voltages))
    s_calc = voltages * np.conj(ybus @ voltages) * net.sn_mva
    slack_p = 0.0
    slack_q = 0.0
    slack_nodes = set()
    for grid in net.ext_grids:
        if grid.in_service and net.buses[grid.bus].in_service:
            node = node_index[rep_of[grid.bus]]
            if energized.get(node) and node in solve_index:
                slack_nodes.add(node)
    for node in slack_nodes:
        injected = s_calc[solve_index[node]]
        # Subtract the other specified injections co-located at the node.
        spec = 0.0 + 0.0j
        for load in net.loads:
            if load.in_service and node_index.get(rep_of[load.bus]) == node:
                spec -= complex(load.p_mw * load.scaling, load.q_mvar * load.scaling)
        for sgen in net.sgens:
            if sgen.in_service and node_index.get(rep_of[sgen.bus]) == node:
                spec += complex(sgen.p_mw * sgen.scaling, sgen.q_mvar * sgen.scaling)
        for gen in net.gens:
            if gen.in_service and node_index.get(rep_of[gen.bus]) == node:
                spec += complex(gen.p_mw, 0.0)
        slack_p += injected.real - spec.real
        slack_q += injected.imag - spec.imag
    result.slack_p_mw = slack_p
    result.slack_q_mvar = slack_q
