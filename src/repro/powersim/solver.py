"""Incremental Newton-Raphson AC power flow.

Session architecture
--------------------
The solver is built around :class:`SolverSession`, a persistent object that
caches everything derivable from the network across solves and rebuilds only
the layers invalidated by the network's revision counters
(:attr:`~repro.powersim.network.Network.topology_rev` /
:attr:`~repro.powersim.network.Network.injection_rev`):

* **Topology layer** (``topology_rev``): bus fusion across closed bus-bus
  switches (union-find), the reduced branch list, node/solve index maps, the
  energization BFS, the Ybus matrix, the PV/PQ/slack partition, and the
  per-bus element groupings used for result assembly.  A precomputed
  line-index → open-switch map replaces the per-line switch-table scan.
* **Injection layer** (``injection_rev``): vectorized P/Q specification
  arrays, voltage setpoints, per-bus injection totals, and the co-located
  slack-node specs.
* **Voltage layer**: the previous converged solution warm-starts the next
  Newton-Raphson run (PV/slack magnitudes re-pinned to their setpoints), so
  a quasi-steady-state re-solve converges in 1–2 iterations instead of the
  4–6 a flat start needs.  A warm start that diverges is retried cold
  before the divergence is reported.

The Jacobian is assembled with vectorized elementwise products and
preallocated block writes — no ``np.diag`` materialization and no
``np.block`` — and the slack summary reuses the cached Ybus.

Physics notes (unchanged from the original one-shot solver):

* Closed bus-bus switches fuse buses, so operating a circuit breaker from
  the cyber side restructures the next snapshot — the coupling mechanism
  the paper's case studies rely on.
* Per-unit conversion uses the system base (``Network.sn_mva``) and each
  bus's nominal voltage.  Transformers use the standard off-nominal-tap
  branch model.
* Islands without an in-service external grid are de-energized: their buses
  report 0 voltage, which the virtual IEDs observe as a dead bus.
* :func:`run_power_flow` remains the one-shot entry point; it is a thin
  wrapper that runs a fresh session once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.powersim.network import Network, PowerSimError, SwitchType
from repro.powersim.results import (
    BranchFlow,
    BusResult,
    PowerFlowDiverged,
    PowerFlowResult,
)

# Bus type codes.
_PQ, _PV, _SLACK = 0, 1, 2

#: Convergence tolerance on the per-unit power mismatch.  Tight enough that
#: warm- and cold-started solves agree to well below 1e-9 in voltage.
_DEFAULT_TOL = 1e-10


@dataclass
class _Branch:
    """Reduced-system branch (line or transformer) ready for Ybus."""

    name: str
    kind: str  # "line" | "trafo"
    from_node: int
    to_node: int
    ys: complex  # series admittance, pu
    b_charging: float  # total shunt susceptance, pu
    tap: float  # off-nominal ratio on the from (HV) side
    from_bus: int  # original bus indices, for reporting
    to_bus: int
    max_i_ka: float = 0.0
    sn_mva: float = 0.0  # trafo rating, for loading


class _UnionFind:
    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


# ---------------------------------------------------------------------------
# Topology layer — rebuilt when Network.topology_rev moves
# ---------------------------------------------------------------------------


class _FlowCtx:
    """Per-branch constants for flow reporting, resolved once per topology."""

    __slots__ = (
        "branch",
        "from_name",
        "to_name",
        "live",
        "sa",
        "sb",
        "i_base_from",
        "i_base_to",
        "limit",
    )

    def __init__(self, net: Network, topo: "_Topology", branch: _Branch) -> None:
        self.branch = branch
        self.from_name = net.buses[branch.from_bus].name
        self.to_name = net.buses[branch.to_bus].name
        a = topo.node_index[branch.from_node]
        b = topo.node_index[branch.to_node]
        self.live = bool(topo.energized[a] and topo.energized[b])
        self.sa = topo.solve_index.get(a, -1)
        self.sb = topo.solve_index.get(b, -1)
        sqrt3 = math.sqrt(3.0)
        self.i_base_from = net.sn_mva / (sqrt3 * net.buses[branch.from_bus].vn_kv)
        self.i_base_to = net.sn_mva / (sqrt3 * net.buses[branch.to_bus].vn_kv)
        if branch.kind == "line":
            self.limit = branch.max_i_ka if branch.max_i_ka > 0 else 1.0
        else:
            self.limit = branch.sn_mva


class _Topology:
    """Everything derivable from switch states, service flags, impedances."""

    def __init__(self, net: Network) -> None:
        n_bus = len(net.buses)
        fused = _fuse_buses(net)
        self.rep_of = [fused.find(i) for i in range(n_bus)]

        # Line liveness: one pass over the switch table builds the
        # line-index → open-bus-line-switch map (instead of scanning all
        # switches once per line).
        blocked: set[int] = set()
        for switch in net.switches:
            if switch.type is SwitchType.BUS_LINE and not switch.closed:
                blocked.add(switch.element)
        self.line_live = [
            line.in_service
            and net.buses[line.from_bus].in_service
            and net.buses[line.to_bus].in_service
            and line.index not in blocked
            for line in net.lines
        ]

        self.branches = _build_branches(net, self.rep_of, self.line_live)
        nodes = sorted(
            {self.rep_of[bus.index] for bus in net.buses if bus.in_service}
        )
        self.node_index = {rep: i for i, rep in enumerate(nodes)}
        self.n = len(nodes)
        n = self.n

        self.bus_node = np.array(
            [
                self.node_index[self.rep_of[bus.index]] if bus.in_service else -1
                for bus in net.buses
            ],
            dtype=np.intp,
        )

        def node_of(bus: int) -> int:
            return self.node_index[self.rep_of[bus]]

        def alive(element) -> bool:
            return element.in_service and net.buses[element.bus].in_service

        # Live element groupings (service state is topology-class, so these
        # survive pure injection changes).
        self.live_loads = [load for load in net.loads if alive(load)]
        self.live_sgens = [sgen for sgen in net.sgens if alive(sgen)]
        self.live_shunts = [shunt for shunt in net.shunts if alive(shunt)]
        self.live_gens = [gen for gen in net.gens if alive(gen)]
        self.live_grids = [grid for grid in net.ext_grids if alive(grid)]
        intp = np.intp
        self.load_bus = np.array([l.bus for l in self.live_loads], dtype=intp)
        self.sgen_bus = np.array([s.bus for s in self.live_sgens], dtype=intp)
        self.gen_bus = np.array([g.bus for g in self.live_gens], dtype=intp)
        self.load_node = np.array(
            [node_of(l.bus) for l in self.live_loads], dtype=intp
        )
        self.sgen_node = np.array(
            [node_of(s.bus) for s in self.live_sgens], dtype=intp
        )
        self.shunt_node = np.array(
            [node_of(s.bus) for s in self.live_shunts], dtype=intp
        )
        self.gen_node = np.array(
            [node_of(g.bus) for g in self.live_gens], dtype=intp
        )
        self.grid_node = np.array(
            [node_of(g.bus) for g in self.live_grids], dtype=intp
        )

        # PV / slack membership (values of the setpoints live in the
        # injection layer; membership is structural).
        bus_type = np.full(n, _PQ)
        bus_type[self.gen_node] = _PV
        bus_type[self.grid_node] = _SLACK
        self.bus_type = bus_type

        # Energization BFS from slack nodes over in-service branches.
        adjacency: list[list[int]] = [[] for _ in range(n)]
        for branch in self.branches:
            a = self.node_index[branch.from_node]
            b = self.node_index[branch.to_node]
            adjacency[a].append(b)
            adjacency[b].append(a)
        energized = np.zeros(n, dtype=bool)
        frontier = [i for i in range(n) if bus_type[i] == _SLACK]
        energized[frontier] = True
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if not energized[neighbour]:
                    energized[neighbour] = True
                    frontier.append(neighbour)
        self.energized = energized

        self.solve_nodes = np.flatnonzero(energized)
        self.solve_index = {
            int(node): k for k, node in enumerate(self.solve_nodes)
        }
        self.ns = int(self.solve_nodes.size)
        self.ybus = _build_ybus(
            net, self.branches, self.node_index, self.solve_index, self.ns
        )
        self.types = bus_type[self.solve_nodes]
        self.pv = np.flatnonzero(self.types == _PV)
        self.pq = np.flatnonzero(self.types == _PQ)
        self.setpoint_mask = self.types != _PQ  # PV + slack: pinned |V|
        self.slack_mask = self.types == _SLACK

        # Distinct slack nodes present in the solve space, as
        # (node, solve position) pairs for the slack summary.
        slack_seen: set[int] = set()
        self.slack_solve: list[tuple[int, int]] = []
        for node in self.grid_node:
            node = int(node)
            if node in slack_seen:
                continue
            slack_seen.add(node)
            if energized[node]:
                self.slack_solve.append((node, self.solve_index[node]))

        # Branch-flow contexts, grouped for report assembly.
        self.line_ctx: dict[str, _FlowCtx] = {}
        self.trafo_ctx: dict[str, _FlowCtx] = {}
        for branch in self.branches:
            ctx = _FlowCtx(net, self, branch)
            if branch.kind == "line":
                self.line_ctx[branch.name] = ctx
            else:
                self.trafo_ctx[branch.name] = ctx


# ---------------------------------------------------------------------------
# Injection layer — rebuilt when Network.injection_rev (or topology) moves
# ---------------------------------------------------------------------------


class _Injections:
    """Vectorized P/Q/V specification arrays for the current setpoints."""

    def __init__(self, net: Network, topo: _Topology) -> None:
        sn = net.sn_mva
        n = topo.n
        self.load_p = np.array(
            [l.p_mw * l.scaling for l in topo.live_loads], dtype=float
        )
        self.load_q = np.array(
            [l.q_mvar * l.scaling for l in topo.live_loads], dtype=float
        )
        self.sgen_p = np.array(
            [s.p_mw * s.scaling for s in topo.live_sgens], dtype=float
        )
        self.sgen_q = np.array(
            [s.q_mvar * s.scaling for s in topo.live_sgens], dtype=float
        )
        shunt_p = np.array([s.p_mw for s in topo.live_shunts], dtype=float)
        shunt_q = np.array([s.q_mvar for s in topo.live_shunts], dtype=float)
        self.gen_p = np.array([g.p_mw for g in topo.live_gens], dtype=float)

        p_spec = np.zeros(n)
        q_spec = np.zeros(n)
        np.subtract.at(p_spec, topo.load_node, self.load_p / sn)
        np.subtract.at(q_spec, topo.load_node, self.load_q / sn)
        np.add.at(p_spec, topo.sgen_node, self.sgen_p / sn)
        np.add.at(q_spec, topo.sgen_node, self.sgen_q / sn)
        np.subtract.at(p_spec, topo.shunt_node, shunt_p / sn)
        np.subtract.at(q_spec, topo.shunt_node, shunt_q / sn)
        np.add.at(p_spec, topo.gen_node, self.gen_p / sn)

        vm_spec = np.ones(n)
        va_spec = np.zeros(n)
        for gen in topo.live_gens:
            vm_spec[topo.node_index[topo.rep_of[gen.bus]]] = gen.vm_pu
        for grid in topo.live_grids:
            idx = topo.node_index[topo.rep_of[grid.bus]]
            vm_spec[idx] = grid.vm_pu
            va_spec[idx] = math.radians(grid.va_degree)

        sel = topo.solve_nodes
        self.s_spec = p_spec[sel] + 1j * q_spec[sel]
        self.vm_solve = vm_spec[sel]
        self.va_solve = va_spec[sel]

        # Per-bus injection totals (MW/MVAr) for bus-result assembly — kills
        # the O(buses × elements) scan of the original solver.
        n_bus = len(net.buses)
        bus_p = np.zeros(n_bus)
        bus_q = np.zeros(n_bus)
        np.subtract.at(bus_p, topo.load_bus, self.load_p)
        np.subtract.at(bus_q, topo.load_bus, self.load_q)
        np.add.at(bus_p, topo.sgen_bus, self.sgen_p)
        np.add.at(bus_q, topo.sgen_bus, self.sgen_q)
        np.add.at(bus_p, topo.gen_bus, self.gen_p)
        self.bus_p = bus_p
        self.bus_q = bus_q

        # Specified injections co-located at each node (MW, complex) —
        # subtracted from the computed slack-node injection.  Shunts are
        # deliberately excluded: their consumption is physics, not spec.
        slack_spec = np.zeros(n, dtype=complex)
        np.add.at(slack_spec, topo.load_node, -(self.load_p + 1j * self.load_q))
        np.add.at(slack_spec, topo.sgen_node, self.sgen_p + 1j * self.sgen_q)
        np.add.at(slack_spec, topo.gen_node, self.gen_p.astype(complex))
        self.slack_spec = slack_spec

        if self.load_p.size:
            on = topo.energized[topo.load_node]
            self.total_load_p = float(self.load_p[on].sum())
        else:
            self.total_load_p = 0.0

    def flat_start(self, topo: _Topology) -> np.ndarray:
        v0 = np.ones(topo.ns, dtype=complex)
        mask = topo.setpoint_mask
        v0[mask] = self.vm_solve[mask] * np.exp(1j * self.va_solve[mask])
        return v0

    def repin(self, voltages: np.ndarray, topo: _Topology) -> np.ndarray:
        """Warm-start vector: previous solution with setpoints re-pinned."""
        vm = np.abs(voltages)
        va = np.angle(voltages)
        vm[topo.setpoint_mask] = self.vm_solve[topo.setpoint_mask]
        va[topo.slack_mask] = self.va_solve[topo.slack_mask]
        return vm * np.exp(1j * va)


# ---------------------------------------------------------------------------
# Solver session
# ---------------------------------------------------------------------------


class SolverSession:
    """Persistent incremental solver bound to one :class:`Network`.

    Call :meth:`solve` each time a fresh snapshot is needed; the session
    compares the network's revision counters against the revisions its
    caches were built from and rebuilds only what moved.  The previous
    voltage solution warm-starts Newton-Raphson whenever the topology is
    unchanged.

    Counters exposed for benches and the data-plane stats:

    * ``solve_count`` — snapshots produced,
    * ``topology_rebuilds`` / ``injection_rebuilds`` — cache-layer misses,
    * ``total_iterations`` — Newton-Raphson iterations across all solves,
    * ``warm_starts`` / ``warm_iterations`` — warm-started solves and their
      (much smaller) iteration cost,
    * ``warm_retries`` — warm starts that diverged and were re-run cold.
    """

    def __init__(
        self,
        net: Network,
        tol: float = _DEFAULT_TOL,
        max_iter: int = 30,
    ) -> None:
        self.net = net
        self.tol = tol
        self.max_iter = max_iter
        self._topo: _Topology | None = None
        self._inj: _Injections | None = None
        self._topo_rev = -1
        self._inj_rev = -1
        self._prev_v: np.ndarray | None = None
        self.last_result: PowerFlowResult | None = None
        self.solve_count = 0
        self.topology_rebuilds = 0
        self.injection_rebuilds = 0
        self.total_iterations = 0
        self.warm_starts = 0
        self.warm_iterations = 0
        self.warm_retries = 0

    # ------------------------------------------------------------------
    def _refresh_caches(self) -> tuple[_Topology, _Injections]:
        net = self.net
        if self._topo is None or net.topology_rev != self._topo_rev:
            self._topo = _Topology(net)
            self._inj = _Injections(net, self._topo)
            self._topo_rev = net.topology_rev
            self._inj_rev = net.injection_rev
            self._prev_v = None  # solve space may have changed shape/meaning
            self.topology_rebuilds += 1
            self.injection_rebuilds += 1
        elif self._inj is None or net.injection_rev != self._inj_rev:
            self._inj = _Injections(net, self._topo)
            self._inj_rev = net.injection_rev
            self.injection_rebuilds += 1
        return self._topo, self._inj

    # ------------------------------------------------------------------
    def solve(self) -> PowerFlowResult:
        """Produce a :class:`PowerFlowResult` for the network's current state."""
        net = self.net
        if not net.buses:
            raise PowerSimError("network has no buses")
        topo, inj = self._refresh_caches()

        result = PowerFlowResult(converged=True, iterations=0)
        vm = np.zeros(topo.n)
        va = np.zeros(topo.n)
        if topo.ns:
            warm = self._prev_v is not None and self._prev_v.size == topo.ns
            v0 = inj.repin(self._prev_v, topo) if warm else inj.flat_start(topo)
            try:
                voltages, iterations = _newton_raphson(
                    topo.ybus, v0, inj.s_spec, topo.pv, topo.pq,
                    self.tol, self.max_iter,
                )
            except PowerFlowDiverged:
                if not warm:
                    self._prev_v = None
                    raise
                # A bad warm start must never report divergence a cold
                # start would have survived.
                self.warm_retries += 1
                warm = False
                self._prev_v = None
                voltages, iterations = _newton_raphson(
                    topo.ybus, inj.flat_start(topo), inj.s_spec,
                    topo.pv, topo.pq, self.tol, self.max_iter,
                )
            self._prev_v = voltages
            self.total_iterations += iterations
            if warm:
                self.warm_starts += 1
                self.warm_iterations += iterations
            result.iterations = iterations
            vm[topo.solve_nodes] = np.abs(voltages)
            va[topo.solve_nodes] = np.degrees(np.angle(voltages))
        else:
            voltages = np.zeros(0, dtype=complex)

        _fill_bus_results(net, result, topo, inj, vm, va)
        _fill_branch_flows(net, result, topo, voltages)
        _fill_slack_summary(net, result, topo, inj, voltages)
        result._total_load_p = inj.total_load_p
        self.solve_count += 1
        self.last_result = result
        return result


def run_power_flow(
    net: Network, tol: float = _DEFAULT_TOL, max_iter: int = 30
) -> PowerFlowResult:
    """One-shot solve; returns a :class:`PowerFlowResult` snapshot.

    Equivalent to running a fresh :class:`SolverSession` once — callers that
    re-solve the same network should hold a session instead.
    """
    return SolverSession(net, tol=tol, max_iter=max_iter).solve()


# ---------------------------------------------------------------------------
# Topology processing helpers
# ---------------------------------------------------------------------------


def _fuse_buses(net: Network) -> _UnionFind:
    fused = _UnionFind(len(net.buses))
    for switch in net.switches:
        if switch.type is SwitchType.BUS_BUS and switch.closed:
            if (
                net.buses[switch.bus].in_service
                and net.buses[switch.other_bus].in_service
            ):
                fused.union(switch.bus, switch.other_bus)
    return fused


def _build_branches(
    net: Network, rep_of: list[int], line_live: list[bool]
) -> list[_Branch]:
    branches: list[_Branch] = []
    for line in net.lines:
        if not line_live[line.index]:
            continue
        from_node, to_node = rep_of[line.from_bus], rep_of[line.to_bus]
        if from_node == to_node:
            continue  # shorted by closed switches; zero-impedance jumper
        vn = net.buses[line.from_bus].vn_kv
        z_base = vn * vn / net.sn_mva
        z = complex(line.r_ohm, line.x_ohm) / z_base
        b_pu = line.b_us * 1e-6 * z_base
        branches.append(
            _Branch(
                name=line.name,
                kind="line",
                from_node=from_node,
                to_node=to_node,
                ys=1.0 / z,
                b_charging=b_pu,
                tap=1.0,
                from_bus=line.from_bus,
                to_bus=line.to_bus,
                max_i_ka=line.max_i_ka,
            )
        )
    for trafo in net.transformers:
        if not trafo.in_service:
            continue
        if not (
            net.buses[trafo.hv_bus].in_service and net.buses[trafo.lv_bus].in_service
        ):
            continue
        from_node, to_node = rep_of[trafo.hv_bus], rep_of[trafo.lv_bus]
        if from_node == to_node:
            continue
        z_mag = trafo.vk_percent / 100.0 * net.sn_mva / trafo.sn_mva
        r = trafo.vkr_percent / 100.0 * net.sn_mva / trafo.sn_mva
        x = math.sqrt(max(z_mag * z_mag - r * r, 1e-12))
        tap = 1.0 + trafo.tap_pos * trafo.tap_step_percent / 100.0
        branches.append(
            _Branch(
                name=trafo.name,
                kind="trafo",
                from_node=from_node,
                to_node=to_node,
                ys=1.0 / complex(r, x),
                b_charging=0.0,
                tap=tap,
                from_bus=trafo.hv_bus,
                to_bus=trafo.lv_bus,
                sn_mva=trafo.sn_mva,
            )
        )
    return branches


def _build_ybus(
    net: Network,
    branches: list[_Branch],
    node_index: dict[int, int],
    solve_index: dict[int, int],
    ns: int,
) -> np.ndarray:
    ybus = np.zeros((ns, ns), dtype=complex)
    for branch in branches:
        a = node_index[branch.from_node]
        b = node_index[branch.to_node]
        if a not in solve_index or b not in solve_index:
            continue
        i, j = solve_index[a], solve_index[b]
        ys = branch.ys
        bc = 1j * branch.b_charging / 2.0
        tap = branch.tap
        ybus[i, i] += (ys + bc) / (tap * tap)
        ybus[j, j] += ys + bc
        ybus[i, j] -= ys / tap
        ybus[j, i] -= ys / tap
    return ybus


# ---------------------------------------------------------------------------
# Newton-Raphson core
# ---------------------------------------------------------------------------


def _newton_raphson(
    ybus: np.ndarray,
    v0: np.ndarray,
    s_spec: np.ndarray,
    pv: np.ndarray,
    pq: np.ndarray,
    tol: float,
    max_iter: int,
) -> tuple[np.ndarray, int]:
    v = v0.copy()
    pvpq = np.concatenate([pv, pq])
    if pvpq.size == 0:
        return v, 0

    n = v.size
    npvpq = pvpq.size
    npq = pq.size
    diag = np.arange(n)
    rows_pvpq = pvpq[:, None]
    rows_pq = pq[:, None]
    cols_pvpq = pvpq[None, :]
    cols_pq = pq[None, :]
    jacobian = np.empty((npvpq + npq, npvpq + npq))
    f = np.empty(0)

    for iteration in range(1, max_iter + 1):
        i_bus = ybus @ v
        mismatch = v * np.conj(i_bus) - s_spec
        f = np.concatenate([mismatch[pvpq].real, mismatch[pq].imag])
        if np.max(np.abs(f)) < tol:
            return v, iteration - 1

        # dS/dVa = j·diag(V)·conj(diag(I) − Y·diag(V)) without forming any
        # diagonal matrix: row/column scaling plus a diagonal correction.
        m = ybus * (-v)[None, :]
        m[diag, diag] += i_bus
        ds_dva = (1j * v)[:, None] * np.conj(m)
        vnorm = v / np.abs(v)
        ds_dvm = v[:, None] * np.conj(ybus * vnorm[None, :])
        ds_dvm[diag, diag] += np.conj(i_bus) * vnorm

        jacobian[:npvpq, :npvpq] = ds_dva[rows_pvpq, cols_pvpq].real
        jacobian[:npvpq, npvpq:] = ds_dvm[rows_pvpq, cols_pq].real
        jacobian[npvpq:, :npvpq] = ds_dva[rows_pq, cols_pvpq].imag
        jacobian[npvpq:, npvpq:] = ds_dvm[rows_pq, cols_pq].imag

        try:
            dx = np.linalg.solve(jacobian, f)
        except np.linalg.LinAlgError as exc:
            raise PowerFlowDiverged(f"singular Jacobian: {exc}") from exc

        va = np.angle(v)
        vm = np.abs(v)
        va[pvpq] -= dx[:npvpq]
        vm[pq] -= dx[npvpq:]
        v = vm * np.exp(1j * va)

    raise PowerFlowDiverged(
        f"no convergence after {max_iter} iterations "
        f"(max mismatch {np.max(np.abs(f)):.3e})"
    )


# ---------------------------------------------------------------------------
# Result assembly
# ---------------------------------------------------------------------------


def _fill_bus_results(
    net: Network,
    result: PowerFlowResult,
    topo: _Topology,
    inj: _Injections,
    vm: np.ndarray,
    va: np.ndarray,
) -> None:
    bus_node = topo.bus_node
    energized = topo.energized
    bus_p = inj.bus_p
    bus_q = inj.bus_q
    buses = result.buses
    for bus in net.buses:
        node = bus_node[bus.index]
        if node < 0:  # out of service
            buses[bus.name] = BusResult(
                name=bus.name, vm_pu=0.0, va_degree=0.0, p_mw=0.0, q_mvar=0.0,
                energized=False,
            )
            continue
        is_on = bool(energized[node])
        buses[bus.name] = BusResult(
            name=bus.name,
            vm_pu=float(vm[node]) if is_on else 0.0,
            va_degree=float(va[node]) if is_on else 0.0,
            p_mw=float(bus_p[bus.index]) if is_on else 0.0,
            q_mvar=float(bus_q[bus.index]) if is_on else 0.0,
            energized=is_on,
        )


def _flow_for(ctx: _FlowCtx, voltages: np.ndarray, sn_mva: float) -> BranchFlow:
    branch = ctx.branch
    if not ctx.live:
        return _dead_flow(branch.name, ctx.from_name, ctx.to_name, in_service=True)
    vf = complex(voltages[ctx.sa])
    vt = complex(voltages[ctx.sb])
    ys = branch.ys
    bc = 1j * branch.b_charging / 2.0
    tap = branch.tap
    i_from = (ys + bc) / (tap * tap) * vf - ys / tap * vt
    i_to = (ys + bc) * vt - ys / tap * vf
    s_from = vf * i_from.conjugate() * sn_mva
    s_to = vt * i_to.conjugate() * sn_mva
    i_from_ka = abs(i_from) * ctx.i_base_from
    i_to_ka = abs(i_to) * ctx.i_base_to
    if branch.kind == "line":
        loading = max(i_from_ka, i_to_ka) / ctx.limit * 100.0
    else:
        loading = max(abs(s_from), abs(s_to)) / ctx.limit * 100.0
    return BranchFlow(
        name=branch.name,
        from_bus=ctx.from_name,
        to_bus=ctx.to_name,
        p_from_mw=s_from.real,
        q_from_mvar=s_from.imag,
        p_to_mw=s_to.real,
        q_to_mvar=s_to.imag,
        i_from_ka=i_from_ka,
        i_to_ka=i_to_ka,
        loading_percent=loading,
    )


def _fill_branch_flows(
    net: Network,
    result: PowerFlowResult,
    topo: _Topology,
    voltages: np.ndarray,
) -> None:
    sn = net.sn_mva
    for line in net.lines:
        ctx = topo.line_ctx.get(line.name)
        if ctx is not None:
            result.lines[line.name] = _flow_for(ctx, voltages, sn)
        else:
            result.lines[line.name] = _dead_flow(
                line.name,
                net.buses[line.from_bus].name,
                net.buses[line.to_bus].name,
                in_service=topo.line_live[line.index],
            )
    for trafo in net.transformers:
        ctx = topo.trafo_ctx.get(trafo.name)
        if ctx is not None:
            result.transformers[trafo.name] = _flow_for(ctx, voltages, sn)
        else:
            result.transformers[trafo.name] = _dead_flow(
                trafo.name,
                net.buses[trafo.hv_bus].name,
                net.buses[trafo.lv_bus].name,
                in_service=trafo.in_service,
            )


def _dead_flow(
    name: str, from_bus: str, to_bus: str, in_service: bool
) -> BranchFlow:
    return BranchFlow(
        name=name,
        from_bus=from_bus,
        to_bus=to_bus,
        p_from_mw=0.0,
        q_from_mvar=0.0,
        p_to_mw=0.0,
        q_to_mvar=0.0,
        i_from_ka=0.0,
        i_to_ka=0.0,
        loading_percent=0.0,
        in_service=in_service,
    )


def _fill_slack_summary(
    net: Network,
    result: PowerFlowResult,
    topo: _Topology,
    inj: _Injections,
    voltages: np.ndarray,
) -> None:
    """Slack power = total losses + load - specified generation.

    Reuses the session's cached Ybus — the original solver rebuilt it here.
    """
    if voltages.size == 0:
        return
    s_calc = voltages * np.conj(topo.ybus @ voltages) * net.sn_mva
    slack_p = 0.0
    slack_q = 0.0
    for node, k in topo.slack_solve:
        injected = s_calc[k]
        spec = inj.slack_spec[node]
        slack_p += injected.real - spec.real
        slack_q += injected.imag - spec.imag
    result.slack_p_mw = slack_p
    result.slack_q_mvar = slack_q
