"""Time-series simulation: load profiles and disturbance scenarios.

The Power System Extra Config XML (paper §III-A) "specifies the amount of
load and circuit breaker status in a time series for each component in the
simulation model.  The power system simulator in the cyber range reads these
parameters at each step of the simulation."  This module implements that
runtime: a :class:`SimulationScenario` holds profiles and events; the
:class:`TimeSeriesRunner` applies them before each periodic solve.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional

from repro.powersim.network import Network, PowerSimError
from repro.powersim.results import PowerFlowDiverged, PowerFlowResult
from repro.powersim.solver import run_power_flow


@dataclass(frozen=True)
class ProfilePoint:
    """One step of a piecewise-constant profile."""

    time_s: float
    value: float


@dataclass
class LoadProfile:
    """Piecewise-constant scaling profile for a load or static generator.

    ``target`` is the element name; ``kind`` selects the table ("load" or
    "sgen").  Values are multipliers applied to the element's base power.
    """

    target: str
    kind: str = "load"
    points: list[ProfilePoint] = field(default_factory=list)

    def sorted_points(self) -> list[ProfilePoint]:
        return sorted(self.points, key=lambda point: point.time_s)

    def value_at(self, time_s: float) -> Optional[float]:
        """Step interpolation; ``None`` before the first point."""
        ordered = self.sorted_points()
        times = [point.time_s for point in ordered]
        position = bisect.bisect_right(times, time_s) - 1
        if position < 0:
            return None
        return ordered[position].value


@dataclass(frozen=True)
class ScenarioEvent:
    """A discrete disturbance at ``time_s``.

    Supported actions (mirroring the paper's "generator loss, line loss,
    etc." contingency vocabulary):

    * ``open_switch`` / ``close_switch`` — operate a breaker by name,
    * ``line_out`` / ``line_in``          — line loss / restoration,
    * ``gen_out`` / ``gen_in``            — generator loss / restoration,
    * ``sgen_out`` / ``sgen_in``          — PV/battery loss / restoration,
    * ``scale_load``                      — set a load's scaling factor.
    """

    time_s: float
    action: str
    target: str
    value: float = 0.0


_EVENT_ACTIONS = {
    "open_switch",
    "close_switch",
    "line_out",
    "line_in",
    "gen_out",
    "gen_in",
    "sgen_out",
    "sgen_in",
    "scale_load",
}


@dataclass
class SimulationScenario:
    """Scenario = profiles + ordered disturbance events."""

    name: str = "default"
    profiles: list[LoadProfile] = field(default_factory=list)
    events: list[ScenarioEvent] = field(default_factory=list)

    def validate(self, net: Network) -> list[str]:
        problems = []
        for profile in self.profiles:
            if profile.kind == "load" and net.find_load(profile.target) is None:
                problems.append(f"profile targets unknown load {profile.target!r}")
            if profile.kind == "sgen" and net.find_sgen(profile.target) is None:
                problems.append(f"profile targets unknown sgen {profile.target!r}")
        for event in self.events:
            if event.action not in _EVENT_ACTIONS:
                problems.append(f"unknown event action {event.action!r}")
        return problems


class TimeSeriesRunner:
    """Applies scenario state to the network and re-solves on demand.

    The cyber range calls :meth:`step` every power-flow interval (default
    100 ms per the paper).  Between solves the cyber side may have operated
    breakers directly on the network; ``step`` layers the scenario's
    profile values and any newly due events on top, then solves.
    """

    def __init__(self, net: Network, scenario: Optional[SimulationScenario] = None):
        self.net = net
        self.scenario = scenario or SimulationScenario()
        problems = self.scenario.validate(net)
        if problems:
            raise PowerSimError("invalid scenario: " + "; ".join(problems))
        self._pending = sorted(self.scenario.events, key=lambda e: e.time_s)
        self._cursor = 0
        self.last_result: Optional[PowerFlowResult] = None
        self.solve_count = 0
        self.diverged_count = 0

    def step(self, time_s: float) -> PowerFlowResult:
        """Apply scenario state for ``time_s`` and solve."""
        self._apply_profiles(time_s)
        self._apply_due_events(time_s)
        try:
            result = run_power_flow(self.net)
        except PowerFlowDiverged:
            self.diverged_count += 1
            raise
        self.solve_count += 1
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    def _apply_profiles(self, time_s: float) -> None:
        for profile in self.scenario.profiles:
            value = profile.value_at(time_s)
            if value is None:
                continue
            if profile.kind == "load":
                load = self.net.find_load(profile.target)
                if load is not None:
                    load.scaling = value
            elif profile.kind == "sgen":
                sgen = self.net.find_sgen(profile.target)
                if sgen is not None:
                    sgen.scaling = value

    def _apply_due_events(self, time_s: float) -> None:
        while self._cursor < len(self._pending):
            event = self._pending[self._cursor]
            if event.time_s > time_s:
                break
            self._apply_event(event)
            self._cursor += 1

    def _apply_event(self, event: ScenarioEvent) -> None:
        net = self.net
        if event.action == "open_switch":
            net.set_switch(event.target, closed=False)
        elif event.action == "close_switch":
            net.set_switch(event.target, closed=True)
        elif event.action in ("line_out", "line_in"):
            line = net.find_line(event.target)
            if line is None:
                raise PowerSimError(f"event targets unknown line {event.target!r}")
            line.in_service = event.action == "line_in"
        elif event.action in ("gen_out", "gen_in"):
            gen = net.find_gen(event.target)
            if gen is None:
                raise PowerSimError(f"event targets unknown gen {event.target!r}")
            gen.in_service = event.action == "gen_in"
        elif event.action in ("sgen_out", "sgen_in"):
            sgen = net.find_sgen(event.target)
            if sgen is None:
                raise PowerSimError(f"event targets unknown sgen {event.target!r}")
            sgen.in_service = event.action == "sgen_in"
        elif event.action == "scale_load":
            load = net.find_load(event.target)
            if load is None:
                raise PowerSimError(f"event targets unknown load {event.target!r}")
            load.scaling = event.value
        else:  # pragma: no cover - guarded by validate()
            raise PowerSimError(f"unknown event action {event.action!r}")
