"""Time-series simulation: load profiles and disturbance scenarios.

The Power System Extra Config XML (paper §III-A) "specifies the amount of
load and circuit breaker status in a time series for each component in the
simulation model.  The power system simulator in the cyber range reads these
parameters at each step of the simulation."  This module implements that
runtime: a :class:`SimulationScenario` holds profiles and events; the
:class:`TimeSeriesRunner` applies them before each periodic solve.

The runner owns a persistent :class:`~repro.powersim.solver.SolverSession`
and checks the network's revision counters after applying scenario state:
when neither the topology nor the injections moved since the last solve,
:meth:`TimeSeriesRunner.step` returns the cached snapshot without solving —
a steady-state tick costs a counter compare.  Profile targets are bound to
their element objects at construction, so applying profiles never scans the
component tables.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.powersim.network import (
    Load,
    Network,
    PowerSimError,
    StaticGenerator,
)
from repro.powersim.results import PowerFlowDiverged, PowerFlowResult
from repro.powersim.solver import SolverSession


@dataclass(frozen=True)
class ProfilePoint:
    """One step of a piecewise-constant profile."""

    time_s: float
    value: float


@dataclass
class LoadProfile:
    """Piecewise-constant scaling profile for a load or static generator.

    ``target`` is the element name; ``kind`` selects the table ("load" or
    "sgen").  Values are multipliers applied to the element's base power.

    The sorted point order is cached: lookups are O(log n) after the first
    call instead of re-sorting per query.  The cache is keyed on the
    identity of every point, so appends, removals, and in-place
    replacements all invalidate it automatically (:class:`ProfilePoint` is
    frozen — any edit installs a new object).
    """

    target: str
    kind: str = "load"
    points: list[ProfilePoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._snapshot: tuple[ProfilePoint, ...] = ()
        self._cached = False
        self._ordered: list[ProfilePoint] = []
        self._times: list[float] = []

    def invalidate(self) -> None:
        """Drop the sorted-point cache (kept for explicit control)."""
        self._cached = False

    def add_point(self, time_s: float, value: float) -> None:
        self.points.append(ProfilePoint(time_s, value))

    def _ensure_sorted(self) -> None:
        points = self.points
        snapshot = self._snapshot
        if (
            self._cached
            and len(snapshot) == len(points)
            and all(a is b for a, b in zip(snapshot, points))
        ):
            return
        self._snapshot = tuple(points)
        self._ordered = sorted(points, key=lambda point: point.time_s)
        self._times = [point.time_s for point in self._ordered]
        self._cached = True

    def sorted_points(self) -> list[ProfilePoint]:
        self._ensure_sorted()
        return list(self._ordered)

    def value_at(self, time_s: float) -> Optional[float]:
        """Step interpolation; ``None`` before the first point."""
        self._ensure_sorted()
        position = bisect.bisect_right(self._times, time_s) - 1
        if position < 0:
            return None
        return self._ordered[position].value


@dataclass(frozen=True)
class ScenarioEvent:
    """A discrete disturbance at ``time_s``.

    Supported actions (mirroring the paper's "generator loss, line loss,
    etc." contingency vocabulary):

    * ``open_switch`` / ``close_switch`` — operate a breaker by name,
    * ``line_out`` / ``line_in``          — line loss / restoration,
    * ``gen_out`` / ``gen_in``            — generator loss / restoration,
    * ``sgen_out`` / ``sgen_in``          — PV/battery loss / restoration,
    * ``scale_load``                      — set a load's scaling factor.
    """

    time_s: float
    action: str
    target: str
    value: float = 0.0


_EVENT_ACTIONS = {
    "open_switch",
    "close_switch",
    "line_out",
    "line_in",
    "gen_out",
    "gen_in",
    "sgen_out",
    "sgen_in",
    "scale_load",
}


@dataclass
class SimulationScenario:
    """Scenario = profiles + ordered disturbance events."""

    name: str = "default"
    profiles: list[LoadProfile] = field(default_factory=list)
    events: list[ScenarioEvent] = field(default_factory=list)

    def validate(self, net: Network) -> list[str]:
        problems = []
        for profile in self.profiles:
            if profile.kind == "load" and net.find_load(profile.target) is None:
                problems.append(f"profile targets unknown load {profile.target!r}")
            if profile.kind == "sgen" and net.find_sgen(profile.target) is None:
                problems.append(f"profile targets unknown sgen {profile.target!r}")
        for event in self.events:
            if event.action not in _EVENT_ACTIONS:
                problems.append(f"unknown event action {event.action!r}")
        return problems


class TimeSeriesRunner:
    """Applies scenario state to the network and re-solves on demand.

    The cyber range calls :meth:`step` every power-flow interval (default
    100 ms per the paper).  Between solves the cyber side may have operated
    breakers directly on the network; ``step`` layers the scenario's
    profile values and any newly due events on top.  If, after all of that,
    the network's revision counters still match the last solved state, the
    cached :class:`PowerFlowResult` is returned without solving
    (``solve_skipped`` counts these fast-path ticks).
    """

    def __init__(self, net: Network, scenario: Optional[SimulationScenario] = None):
        self.net = net
        self.scenario = scenario or SimulationScenario()
        problems = self.scenario.validate(net)
        if problems:
            raise PowerSimError("invalid scenario: " + "; ".join(problems))
        self.session = SolverSession(net)
        self._pending = sorted(self.scenario.events, key=lambda e: e.time_s)
        self._cursor = 0
        self.last_result: Optional[PowerFlowResult] = None
        self.solve_count = 0
        self.solve_skipped = 0
        self.diverged_count = 0
        self._solved_topo_rev = -1
        self._solved_inj_rev = -1
        # Bind profile targets to element objects once — applying a profile
        # is then a direct attribute write, not a table scan.
        self._bound_profiles: list[
            tuple[LoadProfile, Union[Load, StaticGenerator]]
        ] = []
        for profile in self.scenario.profiles:
            element: Union[Load, StaticGenerator, None]
            if profile.kind == "load":
                element = net.find_load(profile.target)
            elif profile.kind == "sgen":
                element = net.find_sgen(profile.target)
            else:
                element = None
            if element is not None:
                self._bound_profiles.append((profile, element))

    def step(self, time_s: float) -> PowerFlowResult:
        """Apply scenario state for ``time_s`` and solve (or skip)."""
        self._apply_profiles(time_s)
        self._apply_due_events(time_s)
        net = self.net
        if (
            self.last_result is not None
            and net.topology_rev == self._solved_topo_rev
            and net.injection_rev == self._solved_inj_rev
        ):
            self.solve_skipped += 1
            return self.last_result
        try:
            result = self.session.solve()
        except PowerFlowDiverged:
            self.diverged_count += 1
            raise
        self.solve_count += 1
        self._solved_topo_rev = net.topology_rev
        self._solved_inj_rev = net.injection_rev
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    def _apply_profiles(self, time_s: float) -> None:
        for profile, element in self._bound_profiles:
            value = profile.value_at(time_s)
            if value is not None:
                element.scaling = value

    def _apply_due_events(self, time_s: float) -> None:
        while self._cursor < len(self._pending):
            event = self._pending[self._cursor]
            if event.time_s > time_s:
                break
            self._apply_event(event)
            self._cursor += 1

    def _apply_event(self, event: ScenarioEvent) -> None:
        net = self.net
        if event.action == "open_switch":
            net.set_switch(event.target, closed=False)
        elif event.action == "close_switch":
            net.set_switch(event.target, closed=True)
        elif event.action in ("line_out", "line_in"):
            line = net.find_line(event.target)
            if line is None:
                raise PowerSimError(f"event targets unknown line {event.target!r}")
            line.in_service = event.action == "line_in"
        elif event.action in ("gen_out", "gen_in"):
            gen = net.find_gen(event.target)
            if gen is None:
                raise PowerSimError(f"event targets unknown gen {event.target!r}")
            gen.in_service = event.action == "gen_in"
        elif event.action in ("sgen_out", "sgen_in"):
            sgen = net.find_sgen(event.target)
            if sgen is None:
                raise PowerSimError(f"event targets unknown sgen {event.target!r}")
            sgen.in_service = event.action == "sgen_in"
        elif event.action == "scale_load":
            load = net.find_load(event.target)
            if load is None:
                raise PowerSimError(f"event targets unknown load {event.target!r}")
            load.scaling = event.value
        else:  # pragma: no cover - guarded by validate()
            raise PowerSimError(f"unknown event action {event.action!r}")
