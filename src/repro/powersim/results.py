"""Power-flow result snapshot.

A :class:`PowerFlowResult` is the "snapshot of power grid status" the paper
describes: the cyber range publishes selected values (bus voltages, line
currents/powers, breaker states) into the point database after every solve,
and virtual IEDs read them from there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class PowerFlowDiverged(Exception):
    """Newton-Raphson failed to converge within the iteration budget."""


@dataclass
class BusResult:
    name: str
    vm_pu: float
    va_degree: float
    p_mw: float  # net injection (generation positive)
    q_mvar: float
    energized: bool = True

    @property
    def vn_kv_actual(self) -> float:  # pragma: no cover - display helper
        return self.vm_pu


@dataclass
class BranchFlow:
    """Flow on a line or transformer."""

    name: str
    from_bus: str
    to_bus: str
    p_from_mw: float
    q_from_mvar: float
    p_to_mw: float
    q_to_mvar: float
    i_from_ka: float
    i_to_ka: float
    loading_percent: float
    in_service: bool = True

    @property
    def pl_mw(self) -> float:
        """Active losses on the branch."""
        return self.p_from_mw + self.p_to_mw


@dataclass
class PowerFlowResult:
    """Complete solved snapshot."""

    converged: bool
    iterations: int
    buses: dict[str, BusResult] = field(default_factory=dict)
    lines: dict[str, BranchFlow] = field(default_factory=dict)
    transformers: dict[str, BranchFlow] = field(default_factory=dict)
    #: Slack active power (total import from external grids), MW.
    slack_p_mw: float = 0.0
    slack_q_mvar: float = 0.0

    def bus(self, name: str) -> BusResult:
        return self.buses[name]

    def line(self, name: str) -> BranchFlow:
        return self.lines[name]

    @property
    def total_load_mw(self) -> float:
        return self._total_load_p

    @property
    def total_losses_mw(self) -> float:
        losses = 0.0
        for flow in list(self.lines.values()) + list(self.transformers.values()):
            if flow.in_service and not math.isnan(flow.p_from_mw):
                losses += flow.pl_mw
        return losses

    # Filled by the solver; kept private-ish to keep the dataclass simple.
    _total_load_p: float = 0.0

    def energized_bus_count(self) -> int:
        return sum(1 for bus in self.buses.values() if bus.energized)
