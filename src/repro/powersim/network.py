"""Power network component model.

Component tables follow Pandapower's element vocabulary (bus, line, trafo,
load, gen, sgen, ext_grid, switch, shunt) so the SSD Parser's output maps
one-to-one onto what the paper's artifact generates.  All quantities are in
engineering units (kV, MW, MVAr, ohm); the solver converts to per-unit.

Revision counters
-----------------
The network carries two monotonic counters that make solver-cache staleness
a comparison instead of a guess:

* ``topology_rev`` — bumped by anything that changes the solved structure:
  switch positions, ``in_service`` flags, impedances, tap positions, and
  adding elements.
* ``injection_rev`` — bumped by changes that only move power setpoints:
  load/sgen scaling and P/Q values, generator setpoints, slack voltage.

Every element dataclass routes attribute writes through
:class:`_RevisionTracked`, so the counters also catch direct mutation
(``load.scaling = 2.0``) — not just the named helper methods.  The
:class:`~repro.powersim.solver.SolverSession` compares these counters to
decide which cache layers to rebuild; the
:class:`~repro.powersim.timeseries.TimeSeriesRunner` compares them to skip
the solve entirely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class PowerSimError(Exception):
    """Raised on malformed networks or solver misuse."""


class SwitchType(enum.Enum):
    """What the switch connects: two buses, or a bus to a line end."""

    BUS_BUS = "b"
    BUS_LINE = "l"


#: Fields whose mutation changes the solved structure (bus fusion, branch
#: set, Ybus, slack/PV membership, energization).
_TOPOLOGY_FIELDS = frozenset(
    {
        "in_service",
        "closed",
        "tap_pos",
        "tap_step_percent",
        "r_ohm",
        "x_ohm",
        "b_us",
        "max_i_ka",
        "vk_percent",
        "vkr_percent",
        "sn_mva",
        "vn_kv",
        "bus",
        "other_bus",
        "element",
        "from_bus",
        "to_bus",
        "hv_bus",
        "lv_bus",
    }
)

#: Fields whose mutation only moves power injections / setpoints.
_INJECTION_FIELDS = frozenset({"scaling", "p_mw", "q_mvar", "vm_pu", "va_degree"})

_UNSET = object()


class _RevisionTracked:
    """Mixin: attribute writes bump the owning network's revision counters.

    ``_net`` is attached by the :class:`Network` builders after construction;
    while it is ``None`` (during dataclass ``__init__``) writes are untracked.
    Writing an equal value is a no-op for the counters, so re-asserting a
    breaker position or re-applying an unchanged profile never invalidates
    solver caches.
    """

    _net: "Optional[Network]" = None

    def __setattr__(self, name: str, value: object) -> None:
        net = self._net
        if net is not None and getattr(self, name, _UNSET) != value:
            if name in _TOPOLOGY_FIELDS:
                net.topology_rev += 1
            elif name in _INJECTION_FIELDS:
                net.injection_rev += 1
        object.__setattr__(self, name, value)


@dataclass
class Bus(_RevisionTracked):
    index: int
    name: str
    vn_kv: float
    in_service: bool = True
    #: Free-form grouping used for reporting (e.g. EPIC segment name).
    zone: str = ""


@dataclass
class Line(_RevisionTracked):
    index: int
    name: str
    from_bus: int
    to_bus: int
    r_ohm: float
    x_ohm: float
    b_us: float = 0.0  # total charging susceptance, microsiemens
    max_i_ka: float = 1.0
    length_km: float = 1.0
    in_service: bool = True


@dataclass
class Transformer(_RevisionTracked):
    index: int
    name: str
    hv_bus: int
    lv_bus: int
    sn_mva: float
    vn_hv_kv: float
    vn_lv_kv: float
    vk_percent: float = 10.0  # short-circuit voltage
    vkr_percent: float = 0.5  # resistive part
    tap_pos: int = 0
    tap_step_percent: float = 1.25
    in_service: bool = True


@dataclass
class Load(_RevisionTracked):
    index: int
    name: str
    bus: int
    p_mw: float
    q_mvar: float = 0.0
    scaling: float = 1.0
    in_service: bool = True


@dataclass
class StaticGenerator(_RevisionTracked):
    """PQ-injection source: PV arrays, batteries, small DG (sgen)."""

    index: int
    name: str
    bus: int
    p_mw: float
    q_mvar: float = 0.0
    scaling: float = 1.0
    in_service: bool = True
    #: "pv", "battery", ... — reporting only.
    kind: str = "sgen"


@dataclass
class Generator(_RevisionTracked):
    """Voltage-controlled (PV-bus) machine."""

    index: int
    name: str
    bus: int
    p_mw: float
    vm_pu: float = 1.0
    min_q_mvar: float = -1e9
    max_q_mvar: float = 1e9
    in_service: bool = True


@dataclass
class ExternalGrid(_RevisionTracked):
    """Slack connection (infeeding line / upstream grid)."""

    index: int
    name: str
    bus: int
    vm_pu: float = 1.0
    va_degree: float = 0.0
    in_service: bool = True


@dataclass
class Shunt(_RevisionTracked):
    index: int
    name: str
    bus: int
    q_mvar: float  # positive = inductive consumption at 1 pu
    p_mw: float = 0.0
    in_service: bool = True


@dataclass
class Switch(_RevisionTracked):
    """Circuit breaker / disconnector.

    ``BUS_BUS`` switches fuse their two buses when closed.  ``BUS_LINE``
    switches connect ``bus`` to line ``element``; an open one takes the line
    out of service (single-sided opening is modelled as full isolation,
    matching how the cyber range operates breakers).
    """

    index: int
    name: str
    type: SwitchType
    bus: int
    other_bus: int = -1  # BUS_BUS only
    element: int = -1  # line index, BUS_LINE only
    closed: bool = True


class Network:
    """Container of component tables with name-indexed lookup."""

    def __init__(self, name: str = "network", sn_mva: float = 100.0) -> None:
        if sn_mva <= 0:
            raise PowerSimError(f"system base sn_mva must be positive: {sn_mva}")
        self.name = name
        self.sn_mva = sn_mva
        self.buses: list[Bus] = []
        self.lines: list[Line] = []
        self.transformers: list[Transformer] = []
        self.loads: list[Load] = []
        self.sgens: list[StaticGenerator] = []
        self.gens: list[Generator] = []
        self.ext_grids: list[ExternalGrid] = []
        self.shunts: list[Shunt] = []
        self.switches: list[Switch] = []
        self._bus_names: dict[str, int] = {}
        #: Monotonic revision of the solved structure (see module docstring).
        self.topology_rev = 0
        #: Monotonic revision of power injections / setpoints.
        self.injection_rev = 0

    def _adopt(self, element: _RevisionTracked) -> None:
        """Track mutations of ``element``; adding it is a topology change."""
        element._net = self
        self.topology_rev += 1

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def add_bus(self, name: str, vn_kv: float, zone: str = "") -> int:
        if name in self._bus_names:
            raise PowerSimError(f"duplicate bus name {name!r}")
        if vn_kv <= 0:
            raise PowerSimError(f"bus {name!r}: vn_kv must be positive ({vn_kv})")
        index = len(self.buses)
        bus = Bus(index=index, name=name, vn_kv=vn_kv, zone=zone)
        self.buses.append(bus)
        self._adopt(bus)
        self._bus_names[name] = index
        return index

    def add_line(
        self,
        name: str,
        from_bus: int,
        to_bus: int,
        r_ohm: float,
        x_ohm: float,
        b_us: float = 0.0,
        max_i_ka: float = 1.0,
        length_km: float = 1.0,
    ) -> int:
        self._check_bus(from_bus, f"line {name!r} from_bus")
        self._check_bus(to_bus, f"line {name!r} to_bus")
        if from_bus == to_bus:
            raise PowerSimError(f"line {name!r} connects a bus to itself")
        if x_ohm == 0 and r_ohm == 0:
            raise PowerSimError(f"line {name!r} has zero impedance")
        index = len(self.lines)
        self.lines.append(
            Line(
                index=index,
                name=name,
                from_bus=from_bus,
                to_bus=to_bus,
                r_ohm=r_ohm,
                x_ohm=x_ohm,
                b_us=b_us,
                max_i_ka=max_i_ka,
                length_km=length_km,
            )
        )
        self._adopt(self.lines[index])
        return index

    def add_transformer(
        self,
        name: str,
        hv_bus: int,
        lv_bus: int,
        sn_mva: float,
        vk_percent: float = 10.0,
        vkr_percent: float = 0.5,
        tap_pos: int = 0,
        tap_step_percent: float = 1.25,
    ) -> int:
        self._check_bus(hv_bus, f"trafo {name!r} hv_bus")
        self._check_bus(lv_bus, f"trafo {name!r} lv_bus")
        if sn_mva <= 0:
            raise PowerSimError(f"trafo {name!r}: sn_mva must be positive")
        index = len(self.transformers)
        self.transformers.append(
            Transformer(
                index=index,
                name=name,
                hv_bus=hv_bus,
                lv_bus=lv_bus,
                sn_mva=sn_mva,
                vn_hv_kv=self.buses[hv_bus].vn_kv,
                vn_lv_kv=self.buses[lv_bus].vn_kv,
                vk_percent=vk_percent,
                vkr_percent=vkr_percent,
                tap_pos=tap_pos,
                tap_step_percent=tap_step_percent,
            )
        )
        self._adopt(self.transformers[index])
        return index

    def add_load(
        self, name: str, bus: int, p_mw: float, q_mvar: float = 0.0
    ) -> int:
        self._check_bus(bus, f"load {name!r}")
        index = len(self.loads)
        self.loads.append(
            Load(index=index, name=name, bus=bus, p_mw=p_mw, q_mvar=q_mvar)
        )
        self._adopt(self.loads[index])
        return index

    def add_sgen(
        self,
        name: str,
        bus: int,
        p_mw: float,
        q_mvar: float = 0.0,
        kind: str = "sgen",
    ) -> int:
        self._check_bus(bus, f"sgen {name!r}")
        index = len(self.sgens)
        self.sgens.append(
            StaticGenerator(
                index=index, name=name, bus=bus, p_mw=p_mw, q_mvar=q_mvar, kind=kind
            )
        )
        self._adopt(self.sgens[index])
        return index

    def add_gen(
        self, name: str, bus: int, p_mw: float, vm_pu: float = 1.0
    ) -> int:
        self._check_bus(bus, f"gen {name!r}")
        index = len(self.gens)
        self.gens.append(
            Generator(index=index, name=name, bus=bus, p_mw=p_mw, vm_pu=vm_pu)
        )
        self._adopt(self.gens[index])
        return index

    def add_ext_grid(
        self, name: str, bus: int, vm_pu: float = 1.0, va_degree: float = 0.0
    ) -> int:
        self._check_bus(bus, f"ext_grid {name!r}")
        index = len(self.ext_grids)
        self.ext_grids.append(
            ExternalGrid(
                index=index, name=name, bus=bus, vm_pu=vm_pu, va_degree=va_degree
            )
        )
        self._adopt(self.ext_grids[index])
        return index

    def add_shunt(
        self, name: str, bus: int, q_mvar: float, p_mw: float = 0.0
    ) -> int:
        self._check_bus(bus, f"shunt {name!r}")
        index = len(self.shunts)
        self.shunts.append(
            Shunt(index=index, name=name, bus=bus, q_mvar=q_mvar, p_mw=p_mw)
        )
        self._adopt(self.shunts[index])
        return index

    def add_switch_bus_bus(
        self, name: str, bus: int, other_bus: int, closed: bool = True
    ) -> int:
        self._check_bus(bus, f"switch {name!r}")
        self._check_bus(other_bus, f"switch {name!r}")
        if bus == other_bus:
            raise PowerSimError(f"switch {name!r} connects a bus to itself")
        index = len(self.switches)
        self.switches.append(
            Switch(
                index=index,
                name=name,
                type=SwitchType.BUS_BUS,
                bus=bus,
                other_bus=other_bus,
                closed=closed,
            )
        )
        self._adopt(self.switches[index])
        return index

    def add_switch_bus_line(
        self, name: str, bus: int, line: int, closed: bool = True
    ) -> int:
        self._check_bus(bus, f"switch {name!r}")
        if not 0 <= line < len(self.lines):
            raise PowerSimError(f"switch {name!r} references unknown line {line}")
        index = len(self.switches)
        self.switches.append(
            Switch(
                index=index,
                name=name,
                type=SwitchType.BUS_LINE,
                bus=bus,
                element=line,
                closed=closed,
            )
        )
        self._adopt(self.switches[index])
        return index

    # ------------------------------------------------------------------
    # Lookup / mutation helpers (the cyber-side writes through these)
    # ------------------------------------------------------------------
    def bus_index(self, name: str) -> int:
        try:
            return self._bus_names[name]
        except KeyError:
            raise PowerSimError(f"unknown bus {name!r}") from None

    def find_switch(self, name: str) -> Optional[Switch]:
        for switch in self.switches:
            if switch.name == name:
                return switch
        return None

    def find_load(self, name: str) -> Optional[Load]:
        for load in self.loads:
            if load.name == name:
                return load
        return None

    def find_line(self, name: str) -> Optional[Line]:
        for line in self.lines:
            if line.name == name:
                return line
        return None

    def find_gen(self, name: str) -> Optional[Generator]:
        for gen in self.gens:
            if gen.name == name:
                return gen
        return None

    def find_sgen(self, name: str) -> Optional[StaticGenerator]:
        for sgen in self.sgens:
            if sgen.name == name:
                return sgen
        return None

    def set_switch(self, name: str, closed: bool) -> None:
        switch = self.find_switch(name)
        if switch is None:
            raise PowerSimError(f"unknown switch {name!r}")
        switch.closed = closed

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        """Component counts — used by the Fig. 5 bench report."""
        return {
            "bus": len(self.buses),
            "line": len(self.lines),
            "trafo": len(self.transformers),
            "load": len(self.loads),
            "sgen": len(self.sgens),
            "gen": len(self.gens),
            "ext_grid": len(self.ext_grids),
            "shunt": len(self.shunts),
            "switch": len(self.switches),
        }

    def _check_bus(self, index: int, context: str) -> None:
        if not 0 <= index < len(self.buses):
            raise PowerSimError(f"{context}: unknown bus index {index}")
