"""Steady-state AC power-flow simulation (Pandapower substitute).

The paper couples its cyber range to Pandapower, "a steady-state power flow
simulation software ... a one-time solver that provides a snapshot of power
grid status", re-run periodically (e.g. every 100 ms) with updated breaker
states and load profiles (§III-C).  This package reproduces exactly that
contract:

* :class:`Network` — component tables (buses, lines, transformers, loads,
  generators, static generators, external grids, switches), carrying the
  ``topology_rev`` / ``injection_rev`` counters mutation tracking maintains.
* :class:`SolverSession` — incremental Newton-Raphson AC power flow: cached
  topology/Ybus, warm-started iterations, revision-counter invalidation.
* :func:`run_power_flow` — one-shot wrapper returning a
  :class:`PowerFlowResult` snapshot.
* :class:`TimeSeriesRunner` — applies load profiles and scenario events
  (contingencies: generator loss, line loss, breaker operations) between
  snapshots, as configured by the Power System Extra Config XML; unchanged
  revisions make :meth:`TimeSeriesRunner.step` return the cached snapshot
  without solving.

Bus fusion across closed bus-bus switches matches Pandapower semantics, so a
circuit-breaker open/close from the cyber side changes the next snapshot.
"""

from repro.powersim.network import (
    Bus,
    ExternalGrid,
    Generator,
    Line,
    Load,
    Network,
    PowerSimError,
    Shunt,
    StaticGenerator,
    Switch,
    SwitchType,
    Transformer,
)
from repro.powersim.results import (
    BranchFlow,
    BusResult,
    PowerFlowResult,
    PowerFlowDiverged,
)
from repro.powersim.solver import SolverSession, run_power_flow
from repro.powersim.timeseries import (
    LoadProfile,
    ProfilePoint,
    ScenarioEvent,
    SimulationScenario,
    TimeSeriesRunner,
)

__all__ = [
    "BranchFlow",
    "Bus",
    "BusResult",
    "ExternalGrid",
    "Generator",
    "Line",
    "Load",
    "LoadProfile",
    "Network",
    "PowerFlowDiverged",
    "PowerFlowResult",
    "PowerSimError",
    "ProfilePoint",
    "ScenarioEvent",
    "Shunt",
    "SimulationScenario",
    "SolverSession",
    "StaticGenerator",
    "Switch",
    "SwitchType",
    "TimeSeriesRunner",
    "Transformer",
    "run_power_flow",
]
