"""Recursive-descent parser for Structured Text.

Grammar follows IEC 61131-3 third edition, restricted to the statement and
expression forms (the graphical languages are out of scope).  Operator
precedence, loosest to tightest: ``OR`` < ``XOR`` < ``AND`` < comparison
< add < multiply < power < unary.
"""

from __future__ import annotations

from typing import Optional

from repro.iec61131.ast import (
    Assignment,
    BinOp,
    CaseBranch,
    CaseStatement,
    ExitStatement,
    Expression,
    FbCall,
    ForStatement,
    FunctionCall,
    IfStatement,
    Literal,
    ProgramDecl,
    RepeatStatement,
    ReturnStatement,
    Statement,
    UnaryOp,
    VarDeclaration,
    VarRef,
    WhileStatement,
)
from repro.iec61131.errors import StParseError
from repro.iec61131.lexer import Token, TokenKind, tokenize

_VAR_BLOCK_KINDS = {
    "VAR", "VAR_INPUT", "VAR_OUTPUT", "VAR_IN_OUT", "VAR_GLOBAL", "VAR_EXTERNAL",
}


def parse_program(source: str) -> ProgramDecl:
    """Parse a full POU: ``PROGRAM name ... END_PROGRAM`` (wrappers optional)."""
    return _Parser(tokenize(source)).parse_program()


def parse_statements(source: str) -> tuple:
    """Parse a bare statement list (used for PLCopen ST bodies)."""
    return _Parser(tokenize(source)).parse_statement_list(stop_keywords=frozenset())


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self._position += 1
        return token

    def _expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise StParseError(f"expected {op!r}, got {self.current.describe()}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise StParseError(f"expected {word}, got {self.current.describe()}")
        return self._advance()

    def _expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise StParseError(
                f"expected identifier, got {self.current.describe()}"
            )
        return self._advance()

    def _accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # POU structure
    # ------------------------------------------------------------------
    def parse_program(self) -> ProgramDecl:
        name = "main"
        wrapped = False
        if self._accept_keyword("PROGRAM") or self._accept_keyword(
            "FUNCTION_BLOCK"
        ):
            wrapped = True
            name = self._expect_ident().text
        declarations = []
        while self.current.kind is TokenKind.KEYWORD and (
            self.current.text in _VAR_BLOCK_KINDS
        ):
            declarations.extend(self._parse_var_block())
        stops = frozenset({"END_PROGRAM", "END_FUNCTION_BLOCK"})
        body = self.parse_statement_list(stop_keywords=stops)
        if wrapped:
            if self.current.kind is TokenKind.KEYWORD and self.current.text in stops:
                self._advance()
            else:
                raise StParseError(
                    f"missing END_PROGRAM, got {self.current.describe()}"
                )
        if self.current.kind is not TokenKind.EOF:
            raise StParseError(f"trailing input: {self.current.describe()}")
        return ProgramDecl(name=name, declarations=declarations, body=body)

    def _parse_var_block(self) -> list[VarDeclaration]:
        kind = self._advance().text  # VAR / VAR_INPUT / ...
        # Qualifiers we accept and ignore.
        while self.current.is_keyword("RETAIN") or self.current.is_keyword(
            "CONSTANT"
        ):
            self._advance()
        declarations = []
        while not self.current.is_keyword("END_VAR"):
            declarations.extend(self._parse_var_declaration(kind))
        self._expect_keyword("END_VAR")
        return declarations

    def _parse_var_declaration(self, kind: str) -> list[VarDeclaration]:
        names = [self._expect_ident().text]
        while self._accept_op(","):
            names.append(self._expect_ident().text)
        location = ""
        if self._accept_keyword("AT"):
            if self.current.kind is not TokenKind.LOCATION:
                raise StParseError(
                    f"expected %location after AT, got {self.current.describe()}"
                )
            location = self._advance().text
        self._expect_op(":")
        type_name, array_low, array_high, element_type = self._parse_type()
        initial: Optional[Expression] = None
        if self._accept_op(":="):
            initial = self.parse_expression()
        self._expect_op(";")
        return [
            VarDeclaration(
                name=name,
                type_name=type_name,
                kind=kind,
                location=location if len(names) == 1 else "",
                initial=initial,
                array_low=array_low,
                array_high=array_high,
                element_type=element_type,
            )
            for name in names
        ]

    def _parse_type(self) -> tuple[str, int, int, str]:
        if self._accept_keyword("ARRAY"):
            self._expect_op("[")
            low = self._parse_int_literal()
            self._expect_op("..")
            high = self._parse_int_literal()
            self._expect_op("]")
            self._expect_keyword("OF")
            element = self._expect_type_name()
            return "ARRAY", low, high, element
        return self._expect_type_name(), 0, -1, ""

    def _expect_type_name(self) -> str:
        token = self.current
        if token.kind is TokenKind.IDENT:
            self._advance()
            name = token.text
            # STRING[n] length specifier.
            if name.upper() == "STRING" and self._accept_op("["):
                self._parse_int_literal()
                self._expect_op("]")
            return name
        raise StParseError(f"expected type name, got {token.describe()}")

    def _parse_int_literal(self) -> int:
        negative = self._accept_op("-")
        token = self.current
        if token.kind is not TokenKind.INT:
            raise StParseError(f"expected integer, got {token.describe()}")
        self._advance()
        return -token.value if negative else token.value

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement_list(self, stop_keywords: frozenset) -> tuple:
        statements: list[Statement] = []
        while True:
            token = self.current
            if token.kind is TokenKind.EOF:
                break
            if token.kind is TokenKind.KEYWORD and token.text in stop_keywords:
                break
            if token.kind is TokenKind.KEYWORD and token.text in (
                "ELSE", "ELSIF", "UNTIL", "END_IF", "END_CASE", "END_FOR",
                "END_WHILE", "END_REPEAT", "END_PROGRAM", "END_FUNCTION_BLOCK",
            ):
                break
            if self._accept_op(";"):
                continue  # empty statement
            statements.append(self._parse_statement())
        return tuple(statements)

    def _parse_statement(self) -> Statement:
        token = self.current
        if token.is_keyword("IF"):
            return self._parse_if()
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("FOR"):
            return self._parse_for()
        if token.is_keyword("WHILE"):
            return self._parse_while()
        if token.is_keyword("REPEAT"):
            return self._parse_repeat()
        if token.is_keyword("EXIT"):
            self._advance()
            self._accept_op(";")
            return ExitStatement()
        if token.is_keyword("RETURN"):
            self._advance()
            self._accept_op(";")
            return ReturnStatement()
        if token.kind is TokenKind.IDENT or token.kind is TokenKind.LOCATION:
            return self._parse_assignment_or_call()
        raise StParseError(f"unexpected token {token.describe()}")

    def _parse_assignment_or_call(self) -> Statement:
        # Look ahead: IDENT '(' → FB call; otherwise variable := expr.
        if (
            self.current.kind is TokenKind.IDENT
            and self._tokens[self._position + 1].is_op("(")
        ):
            return self._parse_fb_call()
        target = self._parse_var_ref()
        self._expect_op(":=")
        value = self.parse_expression()
        self._expect_op(";")
        return Assignment(target=target, value=value)

    def _parse_fb_call(self) -> FbCall:
        instance = self._expect_ident().text
        self._expect_op("(")
        params = []
        if not self.current.is_op(")"):
            while True:
                name_token = self._expect_ident()
                self._expect_op(":=")
                params.append((name_token.text, self.parse_expression()))
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        self._expect_op(";")
        return FbCall(instance=instance, params=tuple(params))

    def _parse_if(self) -> IfStatement:
        self._expect_keyword("IF")
        branches = []
        condition = self.parse_expression()
        self._expect_keyword("THEN")
        body = self.parse_statement_list(frozenset())
        branches.append((condition, body))
        else_body: tuple = ()
        while self.current.is_keyword("ELSIF"):
            self._advance()
            condition = self.parse_expression()
            self._expect_keyword("THEN")
            branches.append((condition, self.parse_statement_list(frozenset())))
        if self._accept_keyword("ELSE"):
            else_body = self.parse_statement_list(frozenset())
        self._expect_keyword("END_IF")
        self._accept_op(";")
        return IfStatement(branches=tuple(branches), else_body=else_body)

    def _parse_case(self) -> CaseStatement:
        self._expect_keyword("CASE")
        selector = self.parse_expression()
        self._expect_keyword("OF")
        branches = []
        else_body: tuple = ()
        while not self.current.is_keyword("END_CASE"):
            if self._accept_keyword("ELSE"):
                else_body = self.parse_statement_list(frozenset())
                break
            labels = [self._parse_case_label()]
            while self._accept_op(","):
                labels.append(self._parse_case_label())
            self._expect_op(":")
            body = self._parse_case_body()
            branches.append(CaseBranch(labels=tuple(labels), body=body))
        self._expect_keyword("END_CASE")
        self._accept_op(";")
        return CaseStatement(
            selector=selector, branches=tuple(branches), else_body=else_body
        )

    def _parse_case_body(self) -> tuple:
        """Statements of one CASE branch: stop at the next label/ELSE/END."""
        statements: list[Statement] = []
        while True:
            token = self.current
            if token.kind is TokenKind.EOF:
                break
            if token.kind is TokenKind.KEYWORD and token.text in (
                "ELSE", "END_CASE",
            ):
                break
            # A new case label starts with an (optionally negated) integer.
            if token.kind is TokenKind.INT:
                break
            if token.is_op("-") and (
                self._tokens[self._position + 1].kind is TokenKind.INT
            ):
                break
            if self._accept_op(";"):
                continue
            statements.append(self._parse_statement())
        return tuple(statements)

    def _parse_case_label(self):
        low = self._parse_int_literal()
        if self._accept_op(".."):
            high = self._parse_int_literal()
            return (low, high)
        return low

    def _parse_for(self) -> ForStatement:
        self._expect_keyword("FOR")
        variable = self._expect_ident().text
        self._expect_op(":=")
        start = self.parse_expression()
        self._expect_keyword("TO")
        stop = self.parse_expression()
        step = None
        if self._accept_keyword("BY"):
            step = self.parse_expression()
        self._expect_keyword("DO")
        body = self.parse_statement_list(frozenset())
        self._expect_keyword("END_FOR")
        self._accept_op(";")
        return ForStatement(
            variable=variable, start=start, stop=stop, step=step, body=body
        )

    def _parse_while(self) -> WhileStatement:
        self._expect_keyword("WHILE")
        condition = self.parse_expression()
        self._expect_keyword("DO")
        body = self.parse_statement_list(frozenset())
        self._expect_keyword("END_WHILE")
        self._accept_op(";")
        return WhileStatement(condition=condition, body=body)

    def _parse_repeat(self) -> RepeatStatement:
        self._expect_keyword("REPEAT")
        body = self.parse_statement_list(frozenset())
        self._expect_keyword("UNTIL")
        until = self.parse_expression()
        self._expect_keyword("END_REPEAT")
        self._accept_op(";")
        return RepeatStatement(body=body, until=until)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_xor()
        while self.current.is_keyword("OR"):
            self._advance()
            left = BinOp("OR", left, self._parse_xor())
        return left

    def _parse_xor(self) -> Expression:
        left = self._parse_and()
        while self.current.is_keyword("XOR"):
            self._advance()
            left = BinOp("XOR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_comparison()
        while self.current.is_keyword("AND"):
            self._advance()
            left = BinOp("AND", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        while self.current.kind is TokenKind.OPERATOR and self.current.text in (
            "=", "<>", "<", "<=", ">", ">=",
        ):
            op = self._advance().text
            left = BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self.current.kind is TokenKind.OPERATOR and self.current.text in (
            "+", "-",
        ):
            op = self._advance().text
            left = BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_power()
        while (
            self.current.kind is TokenKind.OPERATOR
            and self.current.text in ("*", "/")
        ) or self.current.is_keyword("MOD"):
            op = self._advance().text
            left = BinOp(op, left, self._parse_power())
        return left

    def _parse_power(self) -> Expression:
        left = self._parse_unary()
        if self.current.is_op("**"):
            self._advance()
            return BinOp("**", left, self._parse_power())  # right associative
        return left

    def _parse_unary(self) -> Expression:
        if self.current.is_op("-"):
            self._advance()
            return UnaryOp("-", self._parse_unary())
        if self.current.is_op("+"):
            self._advance()
            return self._parse_unary()
        if self.current.is_keyword("NOT"):
            self._advance()
            return UnaryOp("NOT", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.current
        if token.kind in (TokenKind.INT, TokenKind.REAL, TokenKind.TIME,
                          TokenKind.STRING, TokenKind.BOOL):
            self._advance()
            return Literal(token.value)
        if token.is_op("("):
            self._advance()
            inner = self.parse_expression()
            self._expect_op(")")
            return inner
        if token.kind is TokenKind.LOCATION:
            self._advance()
            return VarRef(name=token.text)
        if token.kind is TokenKind.IDENT:
            if self._tokens[self._position + 1].is_op("("):
                return self._parse_function_call()
            return self._parse_var_ref()
        raise StParseError(f"unexpected token in expression: {token.describe()}")

    def _parse_function_call(self) -> FunctionCall:
        name = self._expect_ident().text
        self._expect_op("(")
        args = []
        if not self.current.is_op(")"):
            while True:
                args.append(self.parse_expression())
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return FunctionCall(name=name.upper(), args=tuple(args))

    def _parse_var_ref(self) -> VarRef:
        if self.current.kind is TokenKind.LOCATION:
            return VarRef(name=self._advance().text)
        name = self._expect_ident().text
        accessors = []
        while True:
            if self._accept_op("."):
                accessors.append(("member", self._expect_ident().text))
            elif self._accept_op("["):
                accessors.append(("index", self.parse_expression()))
                self._expect_op("]")
            else:
                break
        return VarRef(name=name, accessors=tuple(accessors))
