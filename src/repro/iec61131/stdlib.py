"""IEC 61131-3 standard function blocks and functions.

Function blocks keep state across scans (timers, edge triggers, counters);
functions are pure.  Timers take the current scan's timestamp in
microseconds, so TIME values interoperate with the simulation kernel.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.iec61131.errors import StRuntimeError, StTypeError
from repro.iec61131.types import IecType, coerce


class FunctionBlock:
    """Base: named inputs/outputs accessed as attributes."""

    INPUTS: tuple[str, ...] = ()
    OUTPUTS: tuple[str, ...] = ()

    def set_input(self, name: str, value: Any) -> None:
        if name not in self.INPUTS:
            raise StRuntimeError(
                f"{type(self).__name__} has no input {name!r}"
            )
        setattr(self, name, value)

    def get(self, name: str) -> Any:
        if name not in self.INPUTS and name not in self.OUTPUTS:
            raise StRuntimeError(
                f"{type(self).__name__} has no member {name!r}"
            )
        return getattr(self, name)

    def execute(self, now_us: int) -> None:
        raise NotImplementedError


class TON(FunctionBlock):
    """On-delay timer: Q rises PT after IN rises."""

    INPUTS = ("IN", "PT")
    OUTPUTS = ("Q", "ET")

    def __init__(self) -> None:
        self.IN = False
        self.PT = 0
        self.Q = False
        self.ET = 0
        self._start_us: int | None = None

    def execute(self, now_us: int) -> None:
        if self.IN:
            if self._start_us is None:
                self._start_us = now_us
            self.ET = min(now_us - self._start_us, self.PT)
            self.Q = self.ET >= self.PT
        else:
            self._start_us = None
            self.ET = 0
            self.Q = False


class TOF(FunctionBlock):
    """Off-delay timer: Q falls PT after IN falls."""

    INPUTS = ("IN", "PT")
    OUTPUTS = ("Q", "ET")

    def __init__(self) -> None:
        self.IN = False
        self.PT = 0
        self.Q = False
        self.ET = 0
        self._fall_us: int | None = None

    def execute(self, now_us: int) -> None:
        if self.IN:
            self.Q = True
            self._fall_us = None
            self.ET = 0
        elif self.Q:
            if self._fall_us is None:
                self._fall_us = now_us
            self.ET = min(now_us - self._fall_us, self.PT)
            if self.ET >= self.PT:
                self.Q = False


class TP(FunctionBlock):
    """Pulse timer: Q high for exactly PT after a rising edge on IN."""

    INPUTS = ("IN", "PT")
    OUTPUTS = ("Q", "ET")

    def __init__(self) -> None:
        self.IN = False
        self.PT = 0
        self.Q = False
        self.ET = 0
        self._start_us: int | None = None
        self._prev_in = False

    def execute(self, now_us: int) -> None:
        rising = self.IN and not self._prev_in
        self._prev_in = self.IN
        if rising and self._start_us is None:
            self._start_us = now_us
        if self._start_us is not None:
            self.ET = min(now_us - self._start_us, self.PT)
            self.Q = self.ET < self.PT
            if self.ET >= self.PT and not self.IN:
                self._start_us = None
                self.ET = 0
        else:
            self.Q = False
            self.ET = 0


class R_TRIG(FunctionBlock):
    """Rising-edge detector."""

    INPUTS = ("CLK",)
    OUTPUTS = ("Q",)

    def __init__(self) -> None:
        self.CLK = False
        self.Q = False
        self._prev = False

    def execute(self, now_us: int) -> None:
        self.Q = bool(self.CLK) and not self._prev
        self._prev = bool(self.CLK)


class F_TRIG(FunctionBlock):
    """Falling-edge detector."""

    INPUTS = ("CLK",)
    OUTPUTS = ("Q",)

    def __init__(self) -> None:
        self.CLK = False
        self.Q = False
        self._prev = False

    def execute(self, now_us: int) -> None:
        self.Q = not bool(self.CLK) and self._prev
        self._prev = bool(self.CLK)


class SR(FunctionBlock):
    """Set-dominant latch."""

    INPUTS = ("S1", "R")
    OUTPUTS = ("Q1",)

    def __init__(self) -> None:
        self.S1 = False
        self.R = False
        self.Q1 = False

    def execute(self, now_us: int) -> None:
        self.Q1 = bool(self.S1) or (self.Q1 and not bool(self.R))


class RS(FunctionBlock):
    """Reset-dominant latch."""

    INPUTS = ("S", "R1")
    OUTPUTS = ("Q1",)

    def __init__(self) -> None:
        self.S = False
        self.R1 = False
        self.Q1 = False

    def execute(self, now_us: int) -> None:
        self.Q1 = (bool(self.S) or self.Q1) and not bool(self.R1)


class CTU(FunctionBlock):
    """Up counter."""

    INPUTS = ("CU", "R", "PV")
    OUTPUTS = ("Q", "CV")

    def __init__(self) -> None:
        self.CU = False
        self.R = False
        self.PV = 0
        self.Q = False
        self.CV = 0
        self._prev_cu = False

    def execute(self, now_us: int) -> None:
        if self.R:
            self.CV = 0
        elif self.CU and not self._prev_cu:
            self.CV += 1
        self._prev_cu = bool(self.CU)
        self.Q = self.CV >= self.PV


class CTD(FunctionBlock):
    """Down counter."""

    INPUTS = ("CD", "LD", "PV")
    OUTPUTS = ("Q", "CV")

    def __init__(self) -> None:
        self.CD = False
        self.LD = False
        self.PV = 0
        self.Q = False
        self.CV = 0
        self._prev_cd = False

    def execute(self, now_us: int) -> None:
        if self.LD:
            self.CV = int(self.PV)
        elif self.CD and not self._prev_cd and self.CV > 0:
            self.CV -= 1
        self._prev_cd = bool(self.CD)
        self.Q = self.CV <= 0


class CTUD(FunctionBlock):
    """Up/down counter."""

    INPUTS = ("CU", "CD", "R", "LD", "PV")
    OUTPUTS = ("QU", "QD", "CV")

    def __init__(self) -> None:
        self.CU = False
        self.CD = False
        self.R = False
        self.LD = False
        self.PV = 0
        self.QU = False
        self.QD = False
        self.CV = 0
        self._prev_cu = False
        self._prev_cd = False

    def execute(self, now_us: int) -> None:
        if self.R:
            self.CV = 0
        elif self.LD:
            self.CV = int(self.PV)
        else:
            if self.CU and not self._prev_cu:
                self.CV += 1
            if self.CD and not self._prev_cd and self.CV > 0:
                self.CV -= 1
        self._prev_cu = bool(self.CU)
        self._prev_cd = bool(self.CD)
        self.QU = self.CV >= self.PV
        self.QD = self.CV <= 0


FB_REGISTRY: dict[str, type[FunctionBlock]] = {
    "TON": TON,
    "TOF": TOF,
    "TP": TP,
    "R_TRIG": R_TRIG,
    "F_TRIG": F_TRIG,
    "SR": SR,
    "RS": RS,
    "CTU": CTU,
    "CTD": CTD,
    "CTUD": CTUD,
}


# ---------------------------------------------------------------------------
# Standard functions
# ---------------------------------------------------------------------------


def _limit(minimum, value, maximum):
    return max(minimum, min(value, maximum))


def _sel(selector, if_false, if_true):
    return if_true if selector else if_false


def _mux(selector, *choices):
    index = int(selector)
    if not 0 <= index < len(choices):
        raise StRuntimeError(f"MUX selector {index} out of range")
    return choices[index]


def _sqrt(value):
    if value < 0:
        raise StRuntimeError(f"SQRT of negative value {value}")
    return math.sqrt(value)


def _make_conversion(target: IecType) -> Callable:
    def convert(value):
        return coerce(value, target, context=f"TO_{target.value}")

    return convert


def _trunc(value):
    return int(value)


def _shift_left(value, bits):
    return int(value) << int(bits)


def _shift_right(value, bits):
    return int(value) >> int(bits)


FUNCTION_REGISTRY: dict[str, Callable] = {
    "ABS": abs,
    "SQRT": _sqrt,
    "LN": math.log,
    "LOG": math.log10,
    "EXP": math.exp,
    "SIN": math.sin,
    "COS": math.cos,
    "TAN": math.tan,
    "MIN": min,
    "MAX": max,
    "LIMIT": _limit,
    "SEL": _sel,
    "MUX": _mux,
    "TRUNC": _trunc,
    "SHL": _shift_left,
    "SHR": _shift_right,
}

# Type-conversion functions: <SRC>_TO_<DST> for every elementary pair.
_CONVERTIBLE = [
    "BOOL", "SINT", "INT", "DINT", "LINT", "USINT", "UINT", "UDINT",
    "ULINT", "BYTE", "WORD", "DWORD", "REAL", "LREAL", "TIME",
]
for _src in _CONVERTIBLE:
    for _dst in _CONVERTIBLE:
        if _src == _dst:
            continue
        try:
            _target = IecType.from_name(_dst)
        except StTypeError:  # pragma: no cover - names are static
            continue
        FUNCTION_REGISTRY[f"{_src}_TO_{_dst}"] = _make_conversion(_target)
