"""IEC 61131-3 elementary types and literal handling.

TIME values are represented as integer microseconds, matching the kernel's
clock, so timer function blocks compare directly against simulator time.
"""

from __future__ import annotations

import enum
import re
from typing import Any

from repro.iec61131.errors import StTypeError


class IecType(enum.Enum):
    BOOL = "BOOL"
    SINT = "SINT"
    INT = "INT"
    DINT = "DINT"
    LINT = "LINT"
    USINT = "USINT"
    UINT = "UINT"
    UDINT = "UDINT"
    ULINT = "ULINT"
    BYTE = "BYTE"
    WORD = "WORD"
    DWORD = "DWORD"
    LWORD = "LWORD"
    REAL = "REAL"
    LREAL = "LREAL"
    TIME = "TIME"
    STRING = "STRING"

    @classmethod
    def from_name(cls, name: str) -> "IecType":
        try:
            return cls[name.upper()]
        except KeyError:
            raise StTypeError(f"unknown IEC type {name!r}") from None


_INTEGER_TYPES = {
    IecType.SINT: (-(2**7), 2**7 - 1),
    IecType.INT: (-(2**15), 2**15 - 1),
    IecType.DINT: (-(2**31), 2**31 - 1),
    IecType.LINT: (-(2**63), 2**63 - 1),
    IecType.USINT: (0, 2**8 - 1),
    IecType.UINT: (0, 2**16 - 1),
    IecType.UDINT: (0, 2**32 - 1),
    IecType.ULINT: (0, 2**64 - 1),
    IecType.BYTE: (0, 2**8 - 1),
    IecType.WORD: (0, 2**16 - 1),
    IecType.DWORD: (0, 2**32 - 1),
    IecType.LWORD: (0, 2**64 - 1),
}

_REAL_TYPES = {IecType.REAL, IecType.LREAL}


def is_integer_type(iec_type: IecType) -> bool:
    return iec_type in _INTEGER_TYPES


def is_numeric_type(iec_type: IecType) -> bool:
    return iec_type in _INTEGER_TYPES or iec_type in _REAL_TYPES


def default_value(iec_type: IecType) -> Any:
    if iec_type is IecType.BOOL:
        return False
    if iec_type in _REAL_TYPES:
        return 0.0
    if iec_type is IecType.STRING:
        return ""
    return 0  # integers and TIME


def coerce(value: Any, iec_type: IecType, context: str = "") -> Any:
    """Convert ``value`` to the Python representation of ``iec_type``.

    Integer types wrap into their declared range (IEC semantics on
    overflow are implementation-defined; wrapping matches common runtimes
    including OpenPLC's matiec output).
    """
    where = f" ({context})" if context else ""
    if iec_type is IecType.BOOL:
        if isinstance(value, (bool, int, float)):
            return bool(value)
        raise StTypeError(f"cannot coerce {value!r} to BOOL{where}")
    if iec_type in _INTEGER_TYPES:
        if isinstance(value, bool):
            number = int(value)
        elif isinstance(value, (int, float)):
            number = int(value)
        else:
            raise StTypeError(f"cannot coerce {value!r} to {iec_type.value}{where}")
        low, high = _INTEGER_TYPES[iec_type]
        span = high - low + 1
        return (number - low) % span + low
    if iec_type in _REAL_TYPES:
        if isinstance(value, (bool, int, float)):
            return float(value)
        raise StTypeError(f"cannot coerce {value!r} to {iec_type.value}{where}")
    if iec_type is IecType.TIME:
        if isinstance(value, bool):
            raise StTypeError(f"cannot coerce BOOL to TIME{where}")
        if isinstance(value, (int, float)):
            return int(value)
        raise StTypeError(f"cannot coerce {value!r} to TIME{where}")
    if iec_type is IecType.STRING:
        if isinstance(value, str):
            return value
        raise StTypeError(f"cannot coerce {value!r} to STRING{where}")
    raise StTypeError(f"unsupported type {iec_type}{where}")


_TIME_COMPONENT = re.compile(r"(\d+(?:\.\d+)?)(ms|us|s|m|h|d)", re.IGNORECASE)
_TIME_FACTORS_US = {
    "us": 1,
    "ms": 1_000,
    "s": 1_000_000,
    "m": 60_000_000,
    "h": 3_600_000_000,
    "d": 86_400_000_000,
}


def parse_time_literal(text: str) -> int:
    """``T#1h30m``, ``TIME#500ms``, ``T#1.5s`` → integer microseconds."""
    body = text
    for prefix in ("TIME#", "time#", "T#", "t#"):
        if body.startswith(prefix):
            body = body[len(prefix) :]
            break
    else:
        raise StTypeError(f"not a TIME literal: {text!r}")
    negative = body.startswith("-")
    if negative:
        body = body[1:]
    total_us = 0.0
    matched_len = 0
    for match in _TIME_COMPONENT.finditer(body):
        if match.start() != matched_len:
            raise StTypeError(f"malformed TIME literal: {text!r}")
        magnitude = float(match.group(1))
        unit = match.group(2).lower()
        total_us += magnitude * _TIME_FACTORS_US[unit]
        matched_len = match.end()
    if matched_len != len(body) or matched_len == 0:
        raise StTypeError(f"malformed TIME literal: {text!r}")
    result = int(round(total_us))
    return -result if negative else result


def format_time(us: int) -> str:
    """Integer microseconds → ``T#...`` literal (for diagnostics)."""
    if us == 0:
        return "T#0s"
    sign = "-" if us < 0 else ""
    remaining = abs(us)
    parts = []
    for unit, factor in (("d", 86_400_000_000), ("h", 3_600_000_000),
                         ("m", 60_000_000), ("s", 1_000_000), ("ms", 1_000),
                         ("us", 1)):
        amount, remaining = divmod(remaining, factor)
        if amount:
            parts.append(f"{amount}{unit}")
    return f"T#{sign}{''.join(parts)}"
