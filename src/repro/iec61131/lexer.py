"""Structured Text tokenizer.

Handles the full literal zoo: integers (decimal, ``16#FF`` based), reals
(with exponents), typed literals (``INT#5``), TIME literals (``T#1s500ms``),
strings ('single quoted'), ``(* block *)`` and ``//`` line comments.
Keywords are case-insensitive per the standard.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Any

from repro.iec61131.errors import StLexError
from repro.iec61131.types import parse_time_literal


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    REAL = "real"
    TIME = "time"
    STRING = "string"
    BOOL = "bool"
    OPERATOR = "op"
    LOCATION = "location"  # %IX0.0 etc.
    EOF = "eof"


KEYWORDS = {
    "PROGRAM", "END_PROGRAM", "FUNCTION", "END_FUNCTION", "FUNCTION_BLOCK",
    "END_FUNCTION_BLOCK", "VAR", "VAR_INPUT", "VAR_OUTPUT", "VAR_IN_OUT",
    "VAR_GLOBAL", "VAR_EXTERNAL", "END_VAR", "AT", "RETAIN", "CONSTANT",
    "IF", "THEN", "ELSIF", "ELSE", "END_IF", "CASE", "OF", "END_CASE",
    "FOR", "TO", "BY", "DO", "END_FOR", "WHILE", "END_WHILE", "REPEAT",
    "UNTIL", "END_REPEAT", "EXIT", "RETURN", "ARRAY", "AND", "OR", "XOR",
    "NOT", "MOD", "TRUE", "FALSE",
}

_OPERATORS = [
    ":=", "<=", ">=", "<>", "**", "..", "=", "<", ">", "+", "-", "*", "/",
    "(", ")", "[", "]", ",", ";", ":", ".", "#",
]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_LOCATION_RE = re.compile(r"%[IQM][XBWDL]?\d+(\.\d+)*")
_BASED_INT_RE = re.compile(r"(\d+)#([0-9A-Fa-f_]+)")
_NUMBER_RE = re.compile(r"\d[\d_]*(\.\d[\d_]*)?([eE][+-]?\d+)?")
_TIME_RE = re.compile(r"(T|TIME)#-?[\d._a-zA-Z]+", re.IGNORECASE)
_TYPED_LITERAL_RE = re.compile(
    r"(BOOL|SINT|INT|DINT|LINT|USINT|UINT|UDINT|ULINT|BYTE|WORD|DWORD|LWORD"
    r"|REAL|LREAL)#", re.IGNORECASE
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: Any
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind is TokenKind.OPERATOR and self.text == op

    def describe(self) -> str:
        return f"{self.text!r} at line {self.line}"


def tokenize(source: str) -> list[Token]:
    """Tokenize Structured Text source into a token list ending with EOF."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(source)

    def column() -> int:
        return position - line_start + 1

    while position < length:
        char = source[position]
        # Whitespace.
        if char in " \t\r":
            position += 1
            continue
        if char == "\n":
            position += 1
            line += 1
            line_start = position
            continue
        # Comments.
        if source.startswith("(*", position):
            end = source.find("*)", position + 2)
            if end < 0:
                raise StLexError(f"unterminated comment at line {line}")
            line += source.count("\n", position, end)
            if "\n" in source[position:end]:
                line_start = source.rfind("\n", position, end) + 1
            position = end + 2
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end < 0 else end
            continue
        # Strings.
        if char == "'":
            end = source.find("'", position + 1)
            if end < 0:
                raise StLexError(f"unterminated string at line {line}")
            text = source[position : end + 1]
            tokens.append(
                Token(TokenKind.STRING, text, source[position + 1 : end], line, column())
            )
            position = end + 1
            continue
        # Located variable (%QX0.0 ...).
        if char == "%":
            match = _LOCATION_RE.match(source, position)
            if not match:
                raise StLexError(f"malformed location at line {line}")
            tokens.append(
                Token(TokenKind.LOCATION, match.group(0), match.group(0), line, column())
            )
            position = match.end()
            continue
        # TIME literals.
        time_match = _TIME_RE.match(source, position)
        if time_match:
            text = time_match.group(0)
            tokens.append(
                Token(TokenKind.TIME, text, parse_time_literal(text), line, column())
            )
            position = time_match.end()
            continue
        # Typed literals (INT#5, REAL#1.5) — tokenize prefix, keep value.
        typed_match = _TYPED_LITERAL_RE.match(source, position)
        if typed_match:
            position = typed_match.end()
            continue  # type prefix is advisory; the literal follows
        # Based integers (16#FF).
        based_match = _BASED_INT_RE.match(source, position)
        if based_match:
            base = int(based_match.group(1))
            digits = based_match.group(2).replace("_", "")
            try:
                value = int(digits, base)
            except ValueError as exc:
                raise StLexError(
                    f"bad base-{base} literal at line {line}: {digits!r}"
                ) from exc
            tokens.append(
                Token(TokenKind.INT, based_match.group(0), value, line, column())
            )
            position = based_match.end()
            continue
        # Numbers.
        if char.isdigit():
            match = _NUMBER_RE.match(source, position)
            text = match.group(0)
            clean = text.replace("_", "")
            if "." in clean or "e" in clean or "E" in clean:
                tokens.append(
                    Token(TokenKind.REAL, text, float(clean), line, column())
                )
            else:
                tokens.append(Token(TokenKind.INT, text, int(clean), line, column()))
            position = match.end()
            continue
        # Identifiers / keywords.
        if char.isalpha() or char == "_":
            match = _IDENT_RE.match(source, position)
            text = match.group(0)
            upper = text.upper()
            if upper in ("TRUE", "FALSE"):
                tokens.append(
                    Token(TokenKind.BOOL, text, upper == "TRUE", line, column())
                )
            elif upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, upper, line, column()))
            else:
                tokens.append(Token(TokenKind.IDENT, text, text, line, column()))
            position = match.end()
            continue
        # Operators (longest match first).
        for op in _OPERATORS:
            if source.startswith(op, position):
                tokens.append(Token(TokenKind.OPERATOR, op, op, line, column()))
                position += len(op)
                break
        else:
            raise StLexError(f"unexpected character {char!r} at line {line}")
    tokens.append(Token(TokenKind.EOF, "", None, line, column()))
    return tokens
