"""IEC 61131-3 Structured Text runtime + PLCopen XML loader.

The paper's virtual PLC (OpenPLC61850) executes control logic "programmed
according to IEC 61131", shipped as PLCopen XML.  This package implements
the language substrate:

* :mod:`repro.iec61131.lexer` / :mod:`repro.iec61131.parser` — Structured
  Text front end (IF/CASE/FOR/WHILE/REPEAT, full operator precedence,
  typed and TIME literals).
* :mod:`repro.iec61131.interpreter` — scan-cycle execution with typed
  variables, located variables (``%IX/%QX/%IW/%QW/%ID/%QD``), arrays and
  function-block instances.
* :mod:`repro.iec61131.stdlib` — standard function blocks (TON, TOF, TP,
  R_TRIG, F_TRIG, SR, RS, CTU, CTD, CTUD) and functions (ABS, MIN, MAX,
  LIMIT, SEL, type conversions...).
* :mod:`repro.iec61131.plcopen` — IEC 61131-3 PLCopen XML reader/writer.
"""

from repro.iec61131.errors import (
    StLexError,
    StParseError,
    StRuntimeError,
    StTypeError,
)
from repro.iec61131.interpreter import Program, VarKind, Variable
from repro.iec61131.parser import parse_program, parse_statements
from repro.iec61131.plcopen import (
    PlcOpenDocument,
    PlcPou,
    PlcTask,
    parse_plcopen,
    parse_plcopen_file,
    write_plcopen,
)
from repro.iec61131.types import IecType, parse_time_literal

__all__ = [
    "IecType",
    "PlcOpenDocument",
    "PlcPou",
    "PlcTask",
    "Program",
    "StLexError",
    "StParseError",
    "StRuntimeError",
    "StTypeError",
    "VarKind",
    "Variable",
    "parse_plcopen",
    "parse_plcopen_file",
    "parse_program",
    "parse_statements",
    "parse_time_literal",
    "write_plcopen",
]
