"""IEC 61131-3 PLCopen XML (TC6) reader and writer.

The paper's SG-ML model set includes "IEC 61131-3 PLCopen XML, which
expresses the control logic and variable definitions" (§III-A).  The reader
extracts POUs with Structured Text bodies and their interface declarations;
the writer emits the same structure (used by the EPIC model generator).

Namespace handling mirrors :mod:`repro.scl.parser`: namespaces are stripped
on ingest.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Optional
from xml.dom import minidom

from repro.iec61131.ast import ProgramDecl, VarDeclaration
from repro.iec61131.errors import StParseError
from repro.iec61131.interpreter import Program
from repro.iec61131.parser import parse_statements

PLCOPEN_NAMESPACE = "http://www.plcopen.org/xml/tc6_0201"

_KIND_BY_SECTION = {
    "localVars": "VAR",
    "inputVars": "VAR_INPUT",
    "outputVars": "VAR_OUTPUT",
    "inOutVars": "VAR_IN_OUT",
    "globalVars": "VAR_GLOBAL",
    "externalVars": "VAR_EXTERNAL",
}


@dataclass
class PlcPou:
    """One program organisation unit with an ST body."""

    name: str
    pou_type: str = "program"
    declarations: list[VarDeclaration] = field(default_factory=list)
    st_body: str = ""

    def to_program_decl(self) -> ProgramDecl:
        return ProgramDecl(
            name=self.name,
            declarations=self.declarations,
            body=parse_statements(self.st_body),
        )

    def instantiate(self) -> Program:
        return Program(self.to_program_decl())


@dataclass
class PlcTask:
    """A cyclic task binding a POU instance to a scan interval."""

    name: str
    interval_us: int
    pou_name: str
    priority: int = 0


@dataclass
class PlcOpenDocument:
    pous: list[PlcPou] = field(default_factory=list)
    tasks: list[PlcTask] = field(default_factory=list)

    def find_pou(self, name: str) -> Optional[PlcPou]:
        for pou in self.pous:
            if pou.name == name:
                return pou
        return None


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _find(element: ET.Element, *names: str) -> Optional[ET.Element]:
    current = element
    for name in names:
        found = None
        for child in current:
            if _local(child.tag) == name:
                found = child
                break
        if found is None:
            return None
        current = found
    return current


def _findall(element: ET.Element, name: str) -> list[ET.Element]:
    return [child for child in element.iter() if _local(child.tag) == name]


def parse_plcopen_file(path: str) -> PlcOpenDocument:
    if not os.path.exists(path):
        raise StParseError(f"PLCopen XML file not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        return parse_plcopen(handle.read())


def parse_plcopen(xml_text: str) -> PlcOpenDocument:
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise StParseError(f"malformed PLCopen XML: {exc}") from exc
    if _local(root.tag) != "project":
        raise StParseError(
            f"root element is <{_local(root.tag)}>, expected <project>"
        )
    document = PlcOpenDocument()
    for pou_el in _findall(root, "pou"):
        document.pous.append(_parse_pou(pou_el))
    for task_el in _findall(root, "task"):
        interval_text = task_el.get("interval", "T#100ms")
        from repro.iec61131.types import parse_time_literal

        try:
            interval_us = parse_time_literal(interval_text)
        except Exception:
            interval_us = 100_000
        pou_name = ""
        instance = _find(task_el, "pouInstance")
        if instance is not None:
            pou_name = instance.get("typeName", instance.get("name", ""))
        document.tasks.append(
            PlcTask(
                name=task_el.get("name", "task0"),
                interval_us=interval_us,
                pou_name=pou_name,
                priority=int(task_el.get("priority", "0")),
            )
        )
    return document


def _parse_pou(pou_el: ET.Element) -> PlcPou:
    pou = PlcPou(
        name=pou_el.get("name", "main"),
        pou_type=pou_el.get("pouType", "program"),
    )
    interface = _find(pou_el, "interface")
    if interface is not None:
        for section in interface:
            kind = _KIND_BY_SECTION.get(_local(section.tag))
            if kind is None:
                continue
            for variable_el in section:
                if _local(variable_el.tag) != "variable":
                    continue
                declaration = _parse_variable(variable_el, kind)
                if declaration is not None:
                    pou.declarations.append(declaration)
    st_el = _find(pou_el, "body", "ST")
    if st_el is not None:
        # The ST body text may be directly inside or wrapped in xhtml.
        text_parts = [st_el.text or ""]
        for child in st_el.iter():
            if child is not st_el and child.text:
                text_parts.append(child.text)
        pou.st_body = "\n".join(part for part in text_parts if part.strip())
    return pou


def _parse_variable(
    variable_el: ET.Element, kind: str
) -> Optional[VarDeclaration]:
    name = variable_el.get("name", "")
    if not name:
        return None
    location = variable_el.get("address", "")
    type_el = _find(variable_el, "type")
    type_name = "BOOL"
    array_low, array_high, element_type = 0, -1, ""
    if type_el is not None and len(type_el):
        first = type_el[0]
        tag = _local(first.tag)
        if tag == "derived":
            type_name = first.get("name", "BOOL")
        elif tag == "array":
            dimension = _find(first, "dimension")
            if dimension is not None:
                array_low = int(dimension.get("lower", "0"))
                array_high = int(dimension.get("upper", "0"))
            base = _find(first, "baseType")
            element_type = _local(base[0].tag) if base is not None and len(base) \
                else "INT"
            type_name = "ARRAY"
        else:
            type_name = tag
    initial = None
    initial_el = _find(variable_el, "initialValue", "simpleValue")
    if initial_el is not None:
        raw = initial_el.get("value", "")
        if raw:
            from repro.iec61131.lexer import tokenize
            from repro.iec61131.parser import _Parser

            try:
                initial = _Parser(tokenize(raw)).parse_expression()
            except Exception:
                initial = None
    return VarDeclaration(
        name=name,
        type_name=type_name,
        kind=kind,
        location=location,
        initial=initial,
        array_low=array_low,
        array_high=array_high,
        element_type=element_type,
    )


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


def write_plcopen(document: PlcOpenDocument) -> str:
    """Serialise to PLCopen TC6 XML."""
    root = ET.Element("project", {"xmlns": PLCOPEN_NAMESPACE})
    ET.SubElement(
        root,
        "fileHeader",
        {
            "companyName": "SG-ML",
            "productName": "CyberRange",
            "productVersion": "1.0",
        },
    )
    types_el = ET.SubElement(root, "types")
    pous_el = ET.SubElement(types_el, "pous")
    for pou in document.pous:
        pou_el = ET.SubElement(
            pous_el, "pou", {"name": pou.name, "pouType": pou.pou_type}
        )
        interface = ET.SubElement(pou_el, "interface")
        sections: dict[str, ET.Element] = {}
        for declaration in pou.declarations:
            section_name = _section_for_kind(declaration.kind)
            section = sections.get(section_name)
            if section is None:
                section = ET.SubElement(interface, section_name)
                sections[section_name] = section
            attrs = {"name": declaration.name}
            if declaration.location:
                attrs["address"] = declaration.location
            variable_el = ET.SubElement(section, "variable", attrs)
            if declaration.initial is not None:
                initial_text = _initial_to_text(declaration.initial)
                if initial_text:
                    initial_el = ET.SubElement(variable_el, "initialValue")
                    ET.SubElement(
                        initial_el, "simpleValue", {"value": initial_text}
                    )
            type_el = ET.SubElement(variable_el, "type")
            if declaration.is_array:
                array_el = ET.SubElement(type_el, "array")
                ET.SubElement(
                    array_el,
                    "dimension",
                    {
                        "lower": str(declaration.array_low),
                        "upper": str(declaration.array_high),
                    },
                )
                base = ET.SubElement(array_el, "baseType")
                ET.SubElement(base, declaration.element_type)
            elif declaration.type_name.upper() in (
                "TON", "TOF", "TP", "R_TRIG", "F_TRIG", "SR", "RS", "CTU",
                "CTD", "CTUD",
            ):
                ET.SubElement(type_el, "derived", {"name": declaration.type_name})
            else:
                ET.SubElement(type_el, declaration.type_name)
        body_el = ET.SubElement(pou_el, "body")
        st_el = ET.SubElement(body_el, "ST")
        st_el.text = pou.st_body
    instances = ET.SubElement(root, "instances")
    configurations = ET.SubElement(instances, "configurations")
    configuration = ET.SubElement(configurations, "configuration", {"name": "config"})
    resource = ET.SubElement(configuration, "resource", {"name": "resource1"})
    for task in document.tasks:
        from repro.iec61131.types import format_time

        task_el = ET.SubElement(
            resource,
            "task",
            {
                "name": task.name,
                "interval": format_time(task.interval_us),
                "priority": str(task.priority),
            },
        )
        ET.SubElement(
            task_el,
            "pouInstance",
            {"name": f"{task.pou_name}_instance", "typeName": task.pou_name},
        )
    text = ET.tostring(root, encoding="unicode")
    pretty = minidom.parseString(text).toprettyxml(indent="  ")
    lines = [line for line in pretty.splitlines() if line.strip()]
    return "\n".join(lines) + "\n"


def _initial_to_text(expression) -> str:
    """Serialise an initial-value expression (literals only)."""
    from repro.iec61131.ast import Literal

    if not isinstance(expression, Literal):
        return ""
    value = expression.value
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return f"'{value}'"
    return ""


def _section_for_kind(kind: str) -> str:
    for section, mapped in _KIND_BY_SECTION.items():
        if mapped == kind:
            return section
    return "localVars"
