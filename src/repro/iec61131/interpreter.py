"""Structured Text interpreter with scan-cycle semantics.

A :class:`Program` instance owns typed variables (including located
variables bound to the PLC's I/O image) and function-block instances.  The
PLC runtime calls :meth:`Program.scan` once per cycle with the current
virtual time; timers measure real scan-to-scan elapsed time, exactly like a
hardware PLC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.iec61131.ast import (
    Assignment,
    BinOp,
    CaseStatement,
    ExitStatement,
    Expression,
    FbCall,
    ForStatement,
    FunctionCall,
    IfStatement,
    Literal,
    ProgramDecl,
    RepeatStatement,
    ReturnStatement,
    UnaryOp,
    VarRef,
    WhileStatement,
)
from repro.iec61131.errors import StRuntimeError, StTypeError
from repro.iec61131.parser import parse_program
from repro.iec61131.stdlib import FB_REGISTRY, FUNCTION_REGISTRY, FunctionBlock
from repro.iec61131.types import IecType, coerce, default_value

_MAX_LOOP_ITERATIONS = 1_000_000


def _trunc_div(left: int, right: int) -> int:
    """Integer division truncating toward zero (IEC semantics)."""
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient


class VarKind(enum.Enum):
    INTERNAL = "VAR"
    INPUT = "VAR_INPUT"
    OUTPUT = "VAR_OUTPUT"
    IN_OUT = "VAR_IN_OUT"
    GLOBAL = "VAR_GLOBAL"
    EXTERNAL = "VAR_EXTERNAL"


@dataclass
class Variable:
    """A declared scalar or array variable."""

    name: str
    iec_type: IecType
    kind: VarKind
    location: str = ""
    value: Any = None
    is_array: bool = False
    array_low: int = 0
    array_values: list = field(default_factory=list)

    @property
    def located(self) -> bool:
        return bool(self.location)


class _ExitLoop(Exception):
    pass


class _ReturnProgram(Exception):
    pass


class Program:
    """An executable POU instance."""

    def __init__(self, declaration: ProgramDecl) -> None:
        self.name = declaration.name
        self.body = declaration.body
        self.variables: dict[str, Variable] = {}
        self.function_blocks: dict[str, FunctionBlock] = {}
        self._now_us = 0
        self.scan_count = 0
        for decl in declaration.declarations:
            self._declare(decl)

    @classmethod
    def from_source(cls, source: str) -> "Program":
        return cls(parse_program(source))

    # ------------------------------------------------------------------
    # Declaration handling
    # ------------------------------------------------------------------
    def _declare(self, decl) -> None:
        key = decl.name.lower()
        if key in self.variables or key in self.function_blocks:
            raise StTypeError(f"duplicate declaration {decl.name!r}")
        type_upper = decl.type_name.upper()
        if type_upper in FB_REGISTRY:
            self.function_blocks[key] = FB_REGISTRY[type_upper]()
            return
        kind = VarKind(decl.kind) if decl.kind in VarKind._value2member_map_ \
            else VarKind.INTERNAL
        if decl.is_array:
            element_type = IecType.from_name(decl.element_type)
            size = decl.array_high - decl.array_low + 1
            if size <= 0:
                raise StTypeError(
                    f"array {decl.name!r} has non-positive size {size}"
                )
            variable = Variable(
                name=decl.name,
                iec_type=element_type,
                kind=kind,
                is_array=True,
                array_low=decl.array_low,
                array_values=[default_value(element_type)] * size,
            )
        else:
            iec_type = IecType.from_name(decl.type_name)
            initial = default_value(iec_type)
            if decl.initial is not None:
                initial = coerce(
                    self._eval(decl.initial), iec_type, context=decl.name
                )
            variable = Variable(
                name=decl.name,
                iec_type=iec_type,
                kind=kind,
                location=decl.location,
                value=initial,
            )
        self.variables[key] = variable
        if decl.location:
            self.variables[decl.location.lower()] = variable

    # ------------------------------------------------------------------
    # Public accessors (the PLC runtime's I/O image uses these)
    # ------------------------------------------------------------------
    def get_value(self, name: str) -> Any:
        variable = self._lookup(name)
        if variable.is_array:
            return list(variable.array_values)
        return variable.value

    def set_value(self, name: str, value: Any) -> None:
        variable = self._lookup(name)
        if variable.is_array:
            raise StRuntimeError(f"cannot assign whole array {name!r}")
        variable.value = coerce(value, variable.iec_type, context=name)

    def located_variables(self) -> list[Variable]:
        seen: set[int] = set()
        result = []
        for variable in self.variables.values():
            if variable.located and id(variable) not in seen:
                seen.add(id(variable))
                result.append(variable)
        return result

    def inputs(self) -> list[Variable]:
        return [
            v
            for v in self._unique_variables()
            if v.kind in (VarKind.INPUT, VarKind.IN_OUT)
        ]

    def outputs(self) -> list[Variable]:
        return [
            v
            for v in self._unique_variables()
            if v.kind in (VarKind.OUTPUT, VarKind.IN_OUT)
        ]

    def _unique_variables(self) -> list[Variable]:
        seen: set[int] = set()
        unique = []
        for variable in self.variables.values():
            if id(variable) not in seen:
                seen.add(id(variable))
                unique.append(variable)
        return unique

    def _lookup(self, name: str) -> Variable:
        variable = self.variables.get(name.lower())
        if variable is None:
            raise StRuntimeError(f"unknown variable {name!r}")
        return variable

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def scan(self, now_us: int) -> None:
        """Execute the program body once."""
        self._now_us = now_us
        self.scan_count += 1
        try:
            self._exec_block(self.body)
        except _ReturnProgram:
            pass

    def _exec_block(self, statements: tuple) -> None:
        for statement in statements:
            self._exec(statement)

    def _exec(self, statement) -> None:
        if isinstance(statement, Assignment):
            self._assign(statement.target, self._eval(statement.value))
        elif isinstance(statement, IfStatement):
            for condition, body in statement.branches:
                if self._truthy(self._eval(condition)):
                    self._exec_block(body)
                    return
            self._exec_block(statement.else_body)
        elif isinstance(statement, CaseStatement):
            self._exec_case(statement)
        elif isinstance(statement, ForStatement):
            self._exec_for(statement)
        elif isinstance(statement, WhileStatement):
            self._exec_while(statement)
        elif isinstance(statement, RepeatStatement):
            self._exec_repeat(statement)
        elif isinstance(statement, FbCall):
            self._exec_fb_call(statement)
        elif isinstance(statement, ExitStatement):
            raise _ExitLoop()
        elif isinstance(statement, ReturnStatement):
            raise _ReturnProgram()
        else:  # pragma: no cover - parser produces only the above
            raise StRuntimeError(f"unknown statement {type(statement).__name__}")

    def _exec_case(self, statement: CaseStatement) -> None:
        selector = self._eval(statement.selector)
        for branch in statement.branches:
            for label in branch.labels:
                if isinstance(label, tuple):
                    low, high = label
                    matched = low <= selector <= high
                else:
                    matched = selector == label
                if matched:
                    self._exec_block(branch.body)
                    return
        self._exec_block(statement.else_body)

    def _exec_for(self, statement: ForStatement) -> None:
        variable = self._lookup(statement.variable)
        current = int(self._eval(statement.start))
        stop = int(self._eval(statement.stop))
        step = int(self._eval(statement.step)) if statement.step else 1
        if step == 0:
            raise StRuntimeError("FOR loop with BY 0")
        iterations = 0
        try:
            while (step > 0 and current <= stop) or (step < 0 and current >= stop):
                variable.value = coerce(current, variable.iec_type)
                self._exec_block(statement.body)
                current = int(variable.value) + step
                iterations += 1
                if iterations > _MAX_LOOP_ITERATIONS:
                    raise StRuntimeError("FOR loop exceeded iteration budget")
        except _ExitLoop:
            pass

    def _exec_while(self, statement: WhileStatement) -> None:
        iterations = 0
        try:
            while self._truthy(self._eval(statement.condition)):
                self._exec_block(statement.body)
                iterations += 1
                if iterations > _MAX_LOOP_ITERATIONS:
                    raise StRuntimeError("WHILE loop exceeded iteration budget")
        except _ExitLoop:
            pass

    def _exec_repeat(self, statement: RepeatStatement) -> None:
        iterations = 0
        try:
            while True:
                self._exec_block(statement.body)
                if self._truthy(self._eval(statement.until)):
                    break
                iterations += 1
                if iterations > _MAX_LOOP_ITERATIONS:
                    raise StRuntimeError("REPEAT loop exceeded iteration budget")
        except _ExitLoop:
            pass

    def _exec_fb_call(self, statement: FbCall) -> None:
        block = self.function_blocks.get(statement.instance.lower())
        if block is None:
            raise StRuntimeError(
                f"unknown function block instance {statement.instance!r}"
            )
        for name, expression in statement.params:
            block.set_input(name.upper(), self._eval(expression))
        block.execute(self._now_us)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _eval(self, expression: Expression) -> Any:
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, VarRef):
            return self._eval_var_ref(expression)
        if isinstance(expression, UnaryOp):
            operand = self._eval(expression.operand)
            if expression.op == "-":
                return -operand
            if expression.op == "NOT":
                if isinstance(operand, bool):
                    return not operand
                return ~int(operand)
            return operand
        if isinstance(expression, BinOp):
            return self._eval_binop(expression)
        if isinstance(expression, FunctionCall):
            return self._eval_function(expression)
        raise StRuntimeError(
            f"cannot evaluate {type(expression).__name__}"
        )  # pragma: no cover

    def _eval_var_ref(self, ref: VarRef) -> Any:
        key = ref.name.lower()
        if key in self.function_blocks:
            block = self.function_blocks[key]
            value: Any = block
            for access_kind, accessor in ref.accessors:
                if access_kind != "member" or not isinstance(value, FunctionBlock):
                    raise StRuntimeError(
                        f"bad access on function block {ref.name!r}"
                    )
                value = value.get(accessor.upper())
            if isinstance(value, FunctionBlock):
                raise StRuntimeError(
                    f"function block {ref.name!r} used as a value"
                )
            return value
        variable = self._lookup(ref.name)
        if not ref.accessors:
            if variable.is_array:
                raise StRuntimeError(f"array {ref.name!r} used without index")
            return variable.value
        if len(ref.accessors) == 1 and ref.accessors[0][0] == "index":
            index = int(self._eval(ref.accessors[0][1]))
            return variable.array_values[self._array_offset(variable, index)]
        raise StRuntimeError(f"unsupported accessor path on {ref.name!r}")

    def _assign(self, target: VarRef, value: Any) -> None:
        variable = self._lookup(target.name)
        if not target.accessors:
            if variable.is_array:
                raise StRuntimeError(f"cannot assign whole array {target.name!r}")
            variable.value = coerce(value, variable.iec_type, context=target.name)
            return
        if len(target.accessors) == 1 and target.accessors[0][0] == "index":
            if not variable.is_array:
                raise StRuntimeError(f"{target.name!r} is not an array")
            index = int(self._eval(target.accessors[0][1]))
            offset = self._array_offset(variable, index)
            variable.array_values[offset] = coerce(
                value, variable.iec_type, context=target.name
            )
            return
        raise StRuntimeError(f"unsupported assignment target {target.name!r}")

    @staticmethod
    def _array_offset(variable: Variable, index: int) -> int:
        offset = index - variable.array_low
        if not 0 <= offset < len(variable.array_values):
            raise StRuntimeError(
                f"index {index} out of bounds for array {variable.name!r}"
            )
        return offset

    def _eval_binop(self, expression: BinOp) -> Any:
        op = expression.op
        left = self._eval(expression.left)
        # Short-circuit logic operators.
        if op == "AND":
            if not self._truthy(left):
                return False
            return self._truthy(self._eval(expression.right))
        if op == "OR":
            if self._truthy(left):
                return True
            return self._truthy(self._eval(expression.right))
        right = self._eval(expression.right)
        if op == "XOR":
            return self._truthy(left) != self._truthy(right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise StRuntimeError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return _trunc_div(left, right)
            return left / right
        if op == "MOD":
            if right == 0:
                raise StRuntimeError("MOD by zero")
            # IEC semantics: result takes the sign of the dividend.
            return int(left) - int(right) * _trunc_div(int(left), int(right))
        if op == "**":
            return left**right
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise StRuntimeError(f"unknown operator {op!r}")  # pragma: no cover

    def _eval_function(self, call: FunctionCall) -> Any:
        function = FUNCTION_REGISTRY.get(call.name)
        if function is None:
            raise StRuntimeError(f"unknown function {call.name!r}")
        args = [self._eval(argument) for argument in call.args]
        try:
            return function(*args)
        except (TypeError, ValueError) as exc:
            raise StRuntimeError(f"{call.name}: {exc}") from exc

    @staticmethod
    def _truthy(value: Any) -> bool:
        return bool(value)
