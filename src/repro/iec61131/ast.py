"""AST node definitions for Structured Text."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: Any  # bool | int | float | str (TIME already as int µs)


@dataclass(frozen=True)
class VarRef:
    """Variable reference with optional member / array access.

    ``accessors`` is a sequence of ``("member", name)`` or
    ``("index", expression)`` applied left to right: ``timer.Q`` →
    ``VarRef("timer", (("member", "Q"),))``.
    """

    name: str
    accessors: tuple = ()


@dataclass(frozen=True)
class UnaryOp:
    op: str  # "-" | "NOT" | "+"
    operand: "Expression"


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * / MOD ** = <> < <= > >= AND OR XOR
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class FunctionCall:
    name: str
    args: tuple = ()  # positional Expression list


Expression = Union[Literal, VarRef, UnaryOp, BinOp, FunctionCall]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assignment:
    target: VarRef
    value: Expression


@dataclass(frozen=True)
class IfStatement:
    #: (condition, body) pairs: IF + every ELSIF.
    branches: tuple
    else_body: tuple = ()


@dataclass(frozen=True)
class CaseBranch:
    #: Literal match values and/or (low, high) inclusive ranges.
    labels: tuple
    body: tuple


@dataclass(frozen=True)
class CaseStatement:
    selector: Expression
    branches: tuple
    else_body: tuple = ()


@dataclass(frozen=True)
class ForStatement:
    variable: str
    start: Expression
    stop: Expression
    step: Optional[Expression]
    body: tuple


@dataclass(frozen=True)
class WhileStatement:
    condition: Expression
    body: tuple


@dataclass(frozen=True)
class RepeatStatement:
    body: tuple
    until: Expression


@dataclass(frozen=True)
class FbCall:
    """Function-block invocation: ``timer(IN := x, PT := T#1s);``"""

    instance: str
    params: tuple = ()  # (name, Expression) pairs


@dataclass(frozen=True)
class ExitStatement:
    pass


@dataclass(frozen=True)
class ReturnStatement:
    pass


Statement = Union[
    Assignment,
    IfStatement,
    CaseStatement,
    ForStatement,
    WhileStatement,
    RepeatStatement,
    FbCall,
    ExitStatement,
    ReturnStatement,
]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class VarDeclaration:
    """One declared variable (possibly located or an FB instance)."""

    name: str
    type_name: str  # IEC type, FB type name, or "ARRAY"
    kind: str = "VAR"  # VAR | VAR_INPUT | VAR_OUTPUT | VAR_IN_OUT | VAR_GLOBAL
    location: str = ""  # %QX0.0 ...
    initial: Optional[Expression] = None
    array_low: int = 0
    array_high: int = -1  # inclusive; -1 means "not an array"
    element_type: str = ""  # for arrays

    @property
    def is_array(self) -> bool:
        return self.array_high >= self.array_low and self.element_type != ""


@dataclass
class ProgramDecl:
    """A parsed POU: declarations + body statements."""

    name: str
    declarations: list[VarDeclaration] = field(default_factory=list)
    body: tuple = ()
