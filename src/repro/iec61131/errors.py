"""Exception hierarchy for the Structured Text runtime."""


class StError(Exception):
    """Base class for all IEC 61131-3 failures."""


class StLexError(StError):
    """Invalid token in Structured Text source."""


class StParseError(StError):
    """Structurally invalid Structured Text."""


class StTypeError(StError):
    """Type mismatch at declaration or assignment."""


class StRuntimeError(StError):
    """Execution failure (unknown variable, division by zero, ...)."""
