"""Command-line interface for the SG-ML toolchain.

Usage::

    sgml validate <model-dir>          # parse + cross-file validation
    sgml compile <model-dir>           # run the processor, print artifacts
    sgml run <model-dir> [--seconds N] [--realtime]
    sgml scenario <model-dir> <spec> [--dry-run] [--report out.json]
    sgml campaign <model-dir> [--specs DIR | --families a,b] [--dry-run]
                  [--report out.json] [--reuse-range] [--sites N]
                  [--workers N] [--per-run-timeout S]
    sgml campaign --matrix epic,scaleout [--families a,b] [--workers N]
                  [--report out.json]
    sgml epic <output-dir>             # generate the EPIC demo model
    sgml scaleout <output-dir> [--substations N] [--ieds M]
    sgml lint [paths...] [--spec FILE] [--catalog epic|scaleout] [--all]
              [--model DIR] [--json OUT] [--baseline FILE]
              [--update-baseline]
    sgml serve [--host H] [--port P] [--max-sessions N] [--ttl S]
               [--journal-dir DIR]
    sgml recover <journal-dir-or-file> [--session ID] [--list]
                 [--report out.json] [--golden] [--no-finish]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.epic import generate_epic_model, generate_scaleout_model
from repro.sgml import SgmlModelSet, SgmlProcessor


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sgml",
        description="SG-ML smart grid cyber range toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="validate a model set")
    p_validate.add_argument("model_dir")

    p_compile = sub.add_parser("compile", help="compile a model set")
    p_compile.add_argument("model_dir")

    p_run = sub.add_parser("run", help="compile and run a cyber range")
    p_run.add_argument("model_dir")
    p_run.add_argument("--seconds", type=float, default=10.0)
    p_run.add_argument(
        "--realtime", action="store_true",
        help="pace virtual time against the wall clock",
    )

    p_scenario = sub.add_parser(
        "scenario",
        help="compile a range and run a declarative scenario spec against it",
    )
    p_scenario.add_argument("model_dir")
    p_scenario.add_argument(
        "spec_file", help="scenario spec (.json, or .yaml/.yml with PyYAML)"
    )
    p_scenario.add_argument(
        "--seconds", type=float, default=None,
        help="override the spec's duration_s (default 10)",
    )
    p_scenario.add_argument(
        "--report", "--report-json", dest="report", default="",
        help="also write the structured after-action report "
             "(ScenarioRun.to_dict() JSON) to this path",
    )
    p_scenario.add_argument(
        "--dry-run", action="store_true",
        help="validate the spec (fields, actions, branch graph) without "
             "compiling or running the range",
    )

    p_campaign = sub.add_parser(
        "campaign",
        help="sweep a scenario catalog (or a directory of specs) against "
             "a model set and emit an aggregate report",
    )
    p_campaign.add_argument(
        "model_dir", nargs="?", default="",
        help="model set directory (not needed with --list-families)",
    )
    p_campaign.add_argument(
        "--specs", default="",
        help="directory of scenario spec files to sweep (default: generate "
             "the built-in catalog for the model set)",
    )
    p_campaign.add_argument(
        "--families", default="",
        help="comma-separated catalog family subset (default: all)",
    )
    p_campaign.add_argument(
        "--sites", type=int, default=1,
        help="max sites each family instantiates (default 1)",
    )
    p_campaign.add_argument(
        "--dry-run", action="store_true",
        help="validate every spec without compiling or running anything",
    )
    p_campaign.add_argument(
        "--report", default="",
        help="write the aggregate campaign report JSON to this path",
    )
    p_campaign.add_argument(
        "--reuse-range", action="store_true",
        help="compile one range and run all scenarios on it sequentially "
             "(faster, but state carries over between scenarios)",
    )
    p_campaign.add_argument(
        "--list-families", action="store_true",
        help="list the built-in catalog families and exit",
    )
    p_campaign.add_argument(
        "--workers", type=int, default=0,
        help="process-pool width for fresh-range sweeps (0 = auto: one "
             "per CPU; 1 = the exact serial path; forced to 1 with "
             "--reuse-range and --dry-run)",
    )
    p_campaign.add_argument(
        "--per-run-timeout", type=float, default=None, metavar="S",
        help="per-scenario wall-clock budget in sharded sweeps; a run "
             "over budget becomes a structured failed result",
    )
    p_campaign.add_argument(
        "--matrix", default="",
        help="comma-separated model sets to sweep in one matrix run: "
             "'epic', 'scaleout' (generated on the fly) or model "
             "directories; replaces the positional model_dir",
    )
    p_campaign.add_argument(
        "--scaleout-substations", type=int, default=5,
        help="substations for the generated 'scaleout' matrix entry "
             "(default 5)",
    )
    p_campaign.add_argument(
        "--scaleout-ieds", type=int, default=104,
        help="total IEDs for the generated 'scaleout' matrix entry "
             "(default 104)",
    )

    p_epic = sub.add_parser("epic", help="generate the EPIC demo model set")
    p_epic.add_argument("output_dir")

    p_scale = sub.add_parser(
        "scaleout", help="generate an N-substation scale-out model set"
    )
    p_scale.add_argument("output_dir")
    p_scale.add_argument("--substations", type=int, default=5)
    p_scale.add_argument("--ieds", type=int, default=104)

    p_deploy = sub.add_parser(
        "deploy", help="export a docker-compose deployment bundle"
    )
    p_deploy.add_argument("model_dir")
    p_deploy.add_argument("output_dir")

    p_lint = sub.add_parser(
        "lint",
        help="static analysis: determinism linter, async-hazard detector "
             "and scenario-spec analyzer (see docs/analysis.md)",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="python files or directories to lint (determinism + async "
             "passes)",
    )
    p_lint.add_argument(
        "--spec", action="append", default=[], metavar="FILE",
        help="scenario spec file (.json/.yaml) for the spec analyzer "
             "(repeatable)",
    )
    p_lint.add_argument(
        "--catalog", action="append", default=[], metavar="TOKEN",
        help="builtin catalog to generate and analyze: 'epic' or "
             "'scaleout' (repeatable)",
    )
    p_lint.add_argument(
        "--all", action="store_true",
        help="lint the full surface: src/repro + examples/ (python and "
             "spec files) + both builtin catalogs",
    )
    p_lint.add_argument(
        "--model", default="", metavar="DIR",
        help="model set directory; enables target-existence checks "
             "(spec-missing-target) for --spec files",
    )
    p_lint.add_argument(
        "--json", default="", metavar="OUT",
        help="write the structured findings report (LintReport JSON) here",
    )
    p_lint.add_argument(
        "--baseline", default="", metavar="FILE",
        help="baseline file of grandfathered findings (default: "
             "lint-baseline.json if present)",
    )
    p_lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to grandfather every current finding, "
             "then exit 0",
    )

    p_serve = sub.add_parser(
        "serve",
        help="host multi-tenant cyber range sessions over HTTP + WebSocket "
             "(Range-as-a-Service; see docs/service.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8471,
        help="listen port (0 = ephemeral; default 8471)",
    )
    p_serve.add_argument(
        "--max-sessions", type=int, default=32,
        help="process-wide concurrent session limit (default 32)",
    )
    p_serve.add_argument(
        "--max-per-tenant", type=int, default=8,
        help="per-tenant concurrent session limit (default 8)",
    )
    p_serve.add_argument(
        "--ttl", type=float, default=900.0,
        help="idle seconds before a session is evicted (0 = never; "
             "default 900)",
    )
    p_serve.add_argument(
        "--journal-dir", default="",
        help="write-ahead journal directory: sessions become crash-safe "
             "(replay-restored on boot and after crashes; see "
             "docs/service.md § Durability & recovery)",
    )
    p_serve.add_argument(
        "--shed-busy-share", type=float, default=None,
        help="driver busy-share above which new session creates are shed "
             "with 503 + Retry-After (default 0.9)",
    )

    p_recover = sub.add_parser(
        "recover",
        help="replay a session's write-ahead journal offline: list "
             "restorable sessions or rebuild one and print its report",
    )
    p_recover.add_argument(
        "journal", help="journal directory (or one .jsonl journal file)"
    )
    p_recover.add_argument(
        "--session", default="",
        help="session id to replay (default: the only restorable one)",
    )
    p_recover.add_argument(
        "--list", action="store_true", dest="list_sessions",
        help="list journaled sessions and their restore targets, then exit",
    )
    p_recover.add_argument(
        "--report", default="",
        help="write the replayed session's after-action report JSON here",
    )
    p_recover.add_argument(
        "--golden", action="store_true",
        help="replay with one uninterrupted run_until instead of slices "
             "(bit-for-bit reference for the sliced replay)",
    )
    p_recover.add_argument(
        "--no-finish", action="store_true",
        help="stop at the journal's last durable point instead of running "
             "armed scenarios to their horizon",
    )

    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "epic":
        path = generate_epic_model(args.output_dir)
        print(f"EPIC model set written to {path}")
        return 0
    if args.command == "scaleout":
        path = generate_scaleout_model(
            args.output_dir, substations=args.substations, total_ieds=args.ieds
        )
        print(
            f"{args.substations}-substation / {args.ieds}-IED model set "
            f"written to {path}"
        )
        return 0

    if args.command == "lint":
        return _lint(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "recover":
        return _recover(args)
    if args.command == "campaign" and args.list_families:
        from repro.scenario.catalog import FAMILIES

        for family in FAMILIES.values():
            print(f"{family.name}: {family.description}")
        return 0
    if args.command == "campaign" and args.matrix:
        return _run_matrix(args)
    if args.command == "campaign" and not args.model_dir:
        print("error: campaign needs a model directory", file=sys.stderr)
        return 1
    if args.command == "scenario" and args.dry_run:
        # Spec-only validation: no model parse, no compile, no run.
        return _dry_run_scenario(args)

    model = SgmlModelSet.from_directory(args.model_dir)
    if args.command == "scenario":
        return _run_scenario(model, args)
    if args.command == "campaign":
        return _run_campaign(model, args)
    if args.command == "deploy":
        from repro.sgml import export_compose_bundle

        path = export_compose_bundle(model, args.output_dir)
        print(f"deployment bundle written: {path}")
        return 0
    if args.command == "validate":
        problems = model.validate()
        if problems:
            for problem in problems:
                print(f"PROBLEM: {problem}")
            return 1
        print(
            f"OK: {len(model.ssds)} SSD, {len(model.scds)} SCD, "
            f"{len(model.icds)} ICD, sed={'yes' if model.sed else 'no'}, "
            f"{len(model.ied_configs)} IED configs"
        )
        return 0

    processor = SgmlProcessor(model)
    cyber_range = processor.compile()
    summary = cyber_range.architecture_summary()
    print("compiled cyber range:")
    for key, value in summary.items():
        print(f"  {key:>15}: {value}")
    print("toolchain stage timings (ms):")
    for stage, elapsed in processor.artifacts.stage_timings_ms.items():
        print(f"  {stage:>15}: {elapsed:8.2f}")
    if args.command == "compile":
        return 0

    cyber_range.start()
    print(f"running for {args.seconds:.1f} s of virtual time ...")
    if args.realtime:
        cyber_range.run_realtime(args.seconds)
    else:
        cyber_range.run_for(args.seconds)
    print("final measurements (subset):")
    for key in cyber_range.pointdb.keys("meas/")[:20]:
        print(f"  {key} = {cyber_range.pointdb.get(key)}")
    trips = [
        trip for ied in cyber_range.ieds.values() for trip in ied.engine.trips
    ]
    print(f"protection trips: {len(trips)}")
    for trip in trips[:10]:
        print(f"  {trip.describe()}")
    return 0


def _lint(args: argparse.Namespace) -> int:
    """Run the static-analysis passes and gate the exit code on findings."""
    import glob
    import os

    from repro.analysis import (
        BUILTIN_CATALOGS,
        DEFAULT_BASELINE,
        LintReport,
        build_inventory,
        builtin_inventory,
        lint_catalog,
        lint_source_paths,
        lint_spec_paths,
        load_baseline,
        write_baseline,
    )

    source_paths = list(args.paths)
    spec_paths = list(args.spec)
    catalogs = list(args.catalog)
    inventory = build_inventory(args.model) if args.model else None
    if args.all:
        source_paths += [p for p in ("src/repro", "examples")
                         if os.path.isdir(p)]
        spec_paths += sorted(
            glob.glob(os.path.join("examples", "*.json"))
            + glob.glob(os.path.join("examples", "*.yaml"))
        )
        catalogs += [t for t in BUILTIN_CATALOGS if t not in catalogs]
    if not source_paths and not spec_paths and not catalogs:
        print(
            "error: nothing to lint (give paths, --spec, --catalog or "
            "--all)",
            file=sys.stderr,
        )
        return 2

    # Builtin inventories are built once and shared: with --all, the
    # examples/ specs (EPIC-generated) are checked against the same EPIC
    # inventory the epic catalog is.
    builtin_cache: dict = {}

    def builtin(token: str):
        if token not in builtin_cache:
            builtin_cache[token] = builtin_inventory(token)
        return builtin_cache[token]

    report = LintReport()
    lint_source_paths(source_paths, report)
    spec_inventory = inventory
    if spec_inventory is None and args.all and spec_paths:
        spec_inventory = builtin("epic")
    lint_spec_paths(spec_paths, report, inventory=spec_inventory)
    for token in catalogs:
        lint_catalog(token, report, inventory=builtin(token))

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.update_baseline:
        count = write_baseline(baseline_path, report.findings)
        print(f"baseline {baseline_path} rewritten: {count} finding(s) "
              f"grandfathered")
        return 0
    if args.baseline or os.path.exists(baseline_path):
        report.apply_baseline(load_baseline(baseline_path))
    print(report.summary())
    if args.json:
        report.write_json(args.json)
        print(f"findings report written to {args.json}")
    return 1 if report.failed else 0


def _serve(args: argparse.Namespace) -> int:
    """Run the Range-as-a-Service front end until interrupted."""
    import asyncio

    from repro.service import RangeService, SessionManager

    async def run() -> None:
        service_kwargs = {}
        if args.journal_dir:
            service_kwargs["journal_dir"] = args.journal_dir
        if args.shed_busy_share is not None:
            service_kwargs["shed_busy_share"] = args.shed_busy_share
        service = RangeService(
            SessionManager(
                max_sessions=args.max_sessions,
                max_per_tenant=args.max_per_tenant,
                ttl_s=args.ttl,
            ),
            host=args.host,
            port=args.port,
            **service_kwargs,
        )
        await service.start()
        print(
            f"range service listening on http://{args.host}:{service.port} "
            f"(max {args.max_sessions} sessions, "
            f"{args.max_per_tenant}/tenant, ttl {args.ttl:.0f}s)",
            flush=True,
        )
        if args.journal_dir:
            recovery = service.boot_recovery
            print(
                f"journaling to {args.journal_dir} "
                f"(boot recovery: {len(recovery['restored'])} restored, "
                f"{len(recovery['skipped'])} skipped, "
                f"{len(recovery['failed'])} failed)",
                flush=True,
            )
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("range service stopped")
    return 0


def _recover(args: argparse.Namespace) -> int:
    """Offline journal replay: list sessions, or rebuild one + report.

    Read-only — the replayed session gets no journal attached, so a
    post-mortem replay can never perturb the journal it reads.
    """
    import os

    from repro.service.recovery import (
        RecoveryError,
        list_journals,
        load_journal,
        replay_session,
    )
    from repro.service.server import default_model_resolver

    if os.path.isdir(args.journal):
        paths = list_journals(args.journal)
    else:
        paths = [args.journal]
    states = []
    for path in paths:
        try:
            states.append(load_journal(path))
        except RecoveryError as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
    if args.list_sessions:
        if not states:
            print("no journaled sessions found")
            return 0
        for state in states:
            info = state.summary()
            flags = "restorable" if state.restorable else (
                f"closed ({state.closed_reason})"
            )
            print(
                f"{state.session_id}  model={state.model} "
                f"seed={state.seed} t={info['time_s']:.3f}s "
                f"mutations={len(state.mutations)} {flags}"
            )
        return 0

    if args.session:
        matches = [s for s in states if s.session_id == args.session]
        if not matches:
            raise RecoveryError(f"no journal for session {args.session!r}")
        state = matches[0]
    else:
        restorable = [s for s in states if s.restorable]
        if len(restorable) != 1:
            raise RecoveryError(
                f"{len(restorable)} restorable sessions found; "
                f"pick one with --session (or --list to enumerate)"
            )
        state = restorable[0]
    if not state.restorable:
        raise RecoveryError(
            f"session {state.session_id!r} closed cleanly "
            f"({state.closed_reason}); nothing to recover"
        )

    spec = dict(state.spec)
    spec.setdefault("seed", state.seed)
    mode = "run_until" if args.golden else "slices"
    session = replay_session(
        state, default_model_resolver(spec), mode=mode
    )
    simulator = session.cyber_range.simulator
    print(
        f"replayed session {state.session_id} ({mode}) to "
        f"t={simulator.now / 1_000_000:.6f}s "
        f"({simulator.processed} events, "
        f"{len(state.mutations)} journaled mutations)"
    )
    if not args.no_finish:
        horizon = state.scenario_horizon_us()
        if horizon > simulator.now:
            simulator.run_until(horizon)
            print(
                f"ran armed scenarios to their horizon: "
                f"t={simulator.now / 1_000_000:.6f}s"
            )
    report = session.report()
    session.close(journal_reason=None)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"after-action report written to {args.report}")
    else:
        print(json.dumps(report, indent=2))
    return 0


def _dry_run_scenario(args: argparse.Namespace) -> int:
    """Validate a spec — fields, actions, branch graph — without a range."""
    from repro.scenario import Scenario
    from repro.scenario.campaign import load_spec_file

    scenario = Scenario.from_spec(load_spec_file(args.spec_file))
    edges = sum(len(phase.edges) for phase in scenario.phases)
    roots = len(scenario.root_phases())
    print(
        f"dry-run OK: scenario {scenario.name!r} is valid "
        f"({len(scenario.phases)} phases, {roots} roots, "
        f"{edges} branch edges)"
    )
    return 0


def _run_scenario(model: SgmlModelSet, args: argparse.Namespace) -> int:
    """Compile the range, run the scenario spec, print + score the report."""
    from repro.scenario import Scenario
    from repro.scenario.campaign import load_spec_file

    scenario = Scenario.from_spec(load_spec_file(args.spec_file))
    duration = args.seconds
    if duration is None:
        duration = scenario.duration_s if scenario.duration_s else 10.0
    cyber_range = SgmlProcessor(model).compile()
    print(
        f"running scenario {scenario.name!r} "
        f"({len(scenario.phases)} phases) for {duration:.1f}s ..."
    )
    run = cyber_range.run_scenario(scenario, duration)
    print(run.after_action_report())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(run.to_dict(), handle, indent=2)
        print(f"structured report written to {args.report}")
    return 0 if run.passed else 1


def _campaign_families(args: argparse.Namespace):
    return [
        name.strip() for name in args.families.split(",") if name.strip()
    ] or None


def _campaign_workers(args: argparse.Namespace) -> int:
    """Resolve ``--workers``: 0 = auto (one per CPU); sequential modes 1."""
    import os

    if args.reuse_range or getattr(args, "dry_run", False):
        return 1
    if args.workers and args.workers > 0:
        return args.workers
    return os.cpu_count() or 1


def _run_campaign(model: SgmlModelSet, args: argparse.Namespace) -> int:
    """Build the sweep (catalog or spec dir), validate or run, report."""
    from repro.scenario import Campaign, ShardedCampaign

    kwargs = {"reuse_range": bool(args.reuse_range)}
    if args.specs:
        campaign = Campaign.from_spec_dir(model, args.specs, **kwargs)
    else:
        campaign = Campaign.from_catalog(
            model,
            families=_campaign_families(args),
            max_sites=max(1, args.sites),
            **kwargs,
        )
    if args.dry_run:
        report = campaign.dry_run()
    else:
        workers = _campaign_workers(args)
        print(
            f"running campaign: {len(campaign.scenarios)} scenarios, "
            f"{'reused' if args.reuse_range else 'fresh'} range per run, "
            f"{workers} worker{'s' if workers != 1 else ''} ..."
        )
        report = ShardedCampaign(
            campaign,
            workers=workers,
            per_run_timeout_s=args.per_run_timeout,
        ).run()
    print(report.summary())
    if args.report:
        report.write_json(args.report)
        print(f"aggregate report written to {args.report}")
    return 0 if report.passed else 1


def _run_matrix(args: argparse.Namespace) -> int:
    """Cross-model matrix sweep: model sets x families in one report."""
    import os
    import tempfile

    from repro.scenario.sharding import run_matrix

    if args.dry_run or args.reuse_range or args.specs:
        print(
            "error: --matrix sweeps generated catalogs on fresh ranges; "
            "it does not combine with --dry-run, --reuse-range or --specs",
            file=sys.stderr,
        )
        return 1
    model_sets = []
    for token in (t.strip() for t in args.matrix.split(",")):
        if not token:
            continue
        if token == "epic":
            directory = generate_epic_model(
                tempfile.mkdtemp(prefix="sgml-matrix-epic-")
            )
        elif token == "scaleout":
            directory = generate_scaleout_model(
                tempfile.mkdtemp(prefix="sgml-matrix-scaleout-"),
                substations=args.scaleout_substations,
                total_ieds=args.scaleout_ieds,
            )
        elif os.path.isdir(token):
            directory = token
        else:
            print(
                f"error: matrix entry {token!r} is neither a builtin "
                f"(epic, scaleout) nor a model directory",
                file=sys.stderr,
            )
            return 1
        model_sets.append((token, SgmlModelSet.from_directory(directory)))
    workers = _campaign_workers(args)
    print(
        f"running matrix sweep: {len(model_sets)} model sets, "
        f"{workers} worker{'s' if workers != 1 else ''} ..."
    )
    report = run_matrix(
        model_sets,
        families=_campaign_families(args),
        max_sites=max(1, args.sites),
        workers=workers,
        per_run_timeout_s=args.per_run_timeout,
    )
    print(report.summary())
    if args.report:
        report.write_json(args.report)
        print(f"matrix report written to {args.report}")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
