"""Command-line interface for the SG-ML toolchain.

Usage::

    sgml validate <model-dir>          # parse + cross-file validation
    sgml compile <model-dir>           # run the processor, print artifacts
    sgml run <model-dir> [--seconds N] [--realtime]
    sgml scenario <model-dir> <spec>   # run a declarative scenario, score it
    sgml epic <output-dir>             # generate the EPIC demo model
    sgml scaleout <output-dir> [--substations N] [--ieds M]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.epic import generate_epic_model, generate_scaleout_model
from repro.sgml import SgmlModelSet, SgmlProcessor


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sgml",
        description="SG-ML smart grid cyber range toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="validate a model set")
    p_validate.add_argument("model_dir")

    p_compile = sub.add_parser("compile", help="compile a model set")
    p_compile.add_argument("model_dir")

    p_run = sub.add_parser("run", help="compile and run a cyber range")
    p_run.add_argument("model_dir")
    p_run.add_argument("--seconds", type=float, default=10.0)
    p_run.add_argument(
        "--realtime", action="store_true",
        help="pace virtual time against the wall clock",
    )

    p_scenario = sub.add_parser(
        "scenario",
        help="compile a range and run a declarative scenario spec against it",
    )
    p_scenario.add_argument("model_dir")
    p_scenario.add_argument(
        "spec_file", help="scenario spec (.json, or .yaml/.yml with PyYAML)"
    )
    p_scenario.add_argument(
        "--seconds", type=float, default=None,
        help="override the spec's duration_s (default 10)",
    )
    p_scenario.add_argument(
        "--report-json", default="",
        help="also write the structured after-action report to this path",
    )

    p_epic = sub.add_parser("epic", help="generate the EPIC demo model set")
    p_epic.add_argument("output_dir")

    p_scale = sub.add_parser(
        "scaleout", help="generate an N-substation scale-out model set"
    )
    p_scale.add_argument("output_dir")
    p_scale.add_argument("--substations", type=int, default=5)
    p_scale.add_argument("--ieds", type=int, default=104)

    p_deploy = sub.add_parser(
        "deploy", help="export a docker-compose deployment bundle"
    )
    p_deploy.add_argument("model_dir")
    p_deploy.add_argument("output_dir")

    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "epic":
        path = generate_epic_model(args.output_dir)
        print(f"EPIC model set written to {path}")
        return 0
    if args.command == "scaleout":
        path = generate_scaleout_model(
            args.output_dir, substations=args.substations, total_ieds=args.ieds
        )
        print(
            f"{args.substations}-substation / {args.ieds}-IED model set "
            f"written to {path}"
        )
        return 0

    model = SgmlModelSet.from_directory(args.model_dir)
    if args.command == "scenario":
        return _run_scenario(model, args)
    if args.command == "deploy":
        from repro.sgml import export_compose_bundle

        path = export_compose_bundle(model, args.output_dir)
        print(f"deployment bundle written: {path}")
        return 0
    if args.command == "validate":
        problems = model.validate()
        if problems:
            for problem in problems:
                print(f"PROBLEM: {problem}")
            return 1
        print(
            f"OK: {len(model.ssds)} SSD, {len(model.scds)} SCD, "
            f"{len(model.icds)} ICD, sed={'yes' if model.sed else 'no'}, "
            f"{len(model.ied_configs)} IED configs"
        )
        return 0

    processor = SgmlProcessor(model)
    cyber_range = processor.compile()
    summary = cyber_range.architecture_summary()
    print("compiled cyber range:")
    for key, value in summary.items():
        print(f"  {key:>15}: {value}")
    print("toolchain stage timings (ms):")
    for stage, elapsed in processor.artifacts.stage_timings_ms.items():
        print(f"  {stage:>15}: {elapsed:8.2f}")
    if args.command == "compile":
        return 0

    cyber_range.start()
    print(f"running for {args.seconds:.1f} s of virtual time ...")
    if args.realtime:
        cyber_range.run_realtime(args.seconds)
    else:
        cyber_range.run_for(args.seconds)
    print("final measurements (subset):")
    for key in cyber_range.pointdb.keys("meas/")[:20]:
        print(f"  {key} = {cyber_range.pointdb.get(key)}")
    trips = [
        trip for ied in cyber_range.ieds.values() for trip in ied.engine.trips
    ]
    print(f"protection trips: {len(trips)}")
    for trip in trips[:10]:
        print(f"  {trip.describe()}")
    return 0


def _load_scenario_spec(path: str) -> dict:
    """Read a JSON (always) or YAML (if PyYAML is present) scenario spec."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError:  # pragma: no cover - environment dependent
            raise RuntimeError(
                "PyYAML is not installed; use a .json scenario spec"
            ) from None
        spec = yaml.safe_load(text)
    else:
        spec = json.loads(text)
    if not isinstance(spec, dict):
        raise RuntimeError(f"scenario spec {path!r} is not a mapping")
    return spec


def _run_scenario(model: SgmlModelSet, args: argparse.Namespace) -> int:
    """Compile the range, run the scenario spec, print + score the report."""
    from repro.scenario import Scenario

    spec = _load_scenario_spec(args.spec_file)
    duration = args.seconds
    if duration is None:
        duration = float(spec.get("duration_s", 10.0))
    scenario = Scenario.from_spec(spec)
    cyber_range = SgmlProcessor(model).compile()
    print(
        f"running scenario {scenario.name!r} "
        f"({len(scenario.phases)} phases) for {duration:.1f}s ..."
    )
    run = cyber_range.run_scenario(scenario, duration)
    print(run.after_action_report())
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(run.to_dict(), handle, indent=2)
        print(f"structured report written to {args.report_json}")
    return 0 if run.passed else 1


if __name__ == "__main__":
    sys.exit(main())
