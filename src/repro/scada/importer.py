"""SCADABR-style JSON import.

The SG-ML SCADA Config Parser translates SCADA Config XML into a JSON
document (mirroring the paper's XML→JSON→SCADABR flow); this module turns
that JSON into a runnable :class:`ScadaConfig`.

JSON layout::

    {
      "name": "EPIC-HMI",
      "dataSources": [
        {"name": "CPLC", "type": "MODBUS", "host": "10.0.1.20",
         "port": 502, "updatePeriodMs": 1000}
      ],
      "dataPoints": [
        {"name": "G1_P_MW", "dataSource": "CPLC", "pointType": "analog",
         "modbusTable": "input_float", "offset": 0, "scale": 1.0,
         "settable": false, "alarmHigh": 12.0, "alarmLow": null}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.scada.config import (
    AlarmLimits,
    DataPointConfig,
    DataSourceConfig,
    ScadaConfig,
)
from repro.scada.hmi import ScadaError


def import_scadabr_json(document: Union[str, dict]) -> ScadaConfig:
    """Parse SCADABR-import JSON (text or already-decoded dict)."""
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ScadaError(f"malformed SCADA JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ScadaError("SCADA JSON root must be an object")
    config = ScadaConfig(name=document.get("name", "scada"))
    for raw in document.get("dataSources", []):
        config.sources.append(
            DataSourceConfig(
                name=raw.get("name", ""),
                protocol=raw.get("type", "MODBUS").upper(),
                host_ip=raw.get("host", ""),
                port=int(raw.get("port", 0)),
                poll_interval_ms=float(raw.get("updatePeriodMs", 1000)),
            )
        )
    for raw in document.get("dataPoints", []):
        config.points.append(_parse_point(raw))
    problems = config.validate()
    if problems:
        raise ScadaError("invalid SCADA JSON: " + "; ".join(problems))
    return config


def _parse_point(raw: dict[str, Any]) -> DataPointConfig:
    alarms = AlarmLimits(
        high=_optional_float(raw.get("alarmHigh")),
        low=_optional_float(raw.get("alarmLow")),
    )
    return DataPointConfig(
        name=raw.get("name", ""),
        source=raw.get("dataSource", ""),
        kind=raw.get("pointType", "analog"),
        table=raw.get("modbusTable", ""),
        address=int(raw.get("offset", 0)),
        object_ref=raw.get("objectRef", ""),
        scale=float(raw.get("scale", 1.0)),
        writable=bool(raw.get("settable", False)),
        write_table=raw.get("writeTable", ""),
        write_address=int(raw.get("writeOffset", -1)),
        write_object_ref=raw.get("writeObjectRef", ""),
        alarms=alarms,
    )


def _optional_float(value: Any) -> Union[float, None]:
    if value is None:
        return None
    return float(value)
