"""SCADA configuration model (data sources and data points)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class AlarmLimits:
    """High/low alarm thresholds on an analogue point."""

    high: Optional[float] = None
    low: Optional[float] = None

    def violated(self, value: float) -> Optional[str]:
        if self.high is not None and value > self.high:
            return "HIGH"
        if self.low is not None and value < self.low:
            return "LOW"
        return None


@dataclass
class DataSourceConfig:
    """One polled data source: a PLC (Modbus) or an IED (MMS)."""

    name: str
    protocol: str  # "MODBUS" | "MMS"
    host_ip: str
    port: int = 0  # 0 = protocol default
    poll_interval_ms: float = 1000.0  # paper: second-level HMI granularity


@dataclass
class DataPointConfig:
    """One monitored/controlled point.

    Modbus points address ``table`` (coil / discrete / holding / input) and
    ``address``; MMS points address ``object_ref``.  ``writable`` points
    accept operator commands, routed back over the source protocol.
    """

    name: str
    source: str
    kind: str = "analog"  # "analog" | "binary"
    # Modbus addressing:
    table: str = ""  # "coil"|"discrete"|"holding"|"input"|"input_float"|"holding_float"
    address: int = 0
    # MMS addressing:
    object_ref: str = ""
    scale: float = 1.0
    writable: bool = False
    #: For writable points, where commands go (defaults to the same address
    #: / reference the point reads from).
    write_table: str = ""
    write_address: int = -1
    write_object_ref: str = ""
    alarms: AlarmLimits = field(default_factory=AlarmLimits)


@dataclass
class ScadaConfig:
    """Complete HMI configuration."""

    name: str = "scada"
    sources: list[DataSourceConfig] = field(default_factory=list)
    points: list[DataPointConfig] = field(default_factory=list)

    def find_source(self, name: str) -> Optional[DataSourceConfig]:
        for source in self.sources:
            if source.name == name:
                return source
        return None

    def find_point(self, name: str) -> Optional[DataPointConfig]:
        for point in self.points:
            if point.name == name:
                return point
        return None

    def validate(self) -> list[str]:
        problems = []
        source_names = {source.name for source in self.sources}
        for source in self.sources:
            if source.protocol not in ("MODBUS", "MMS"):
                problems.append(
                    f"source {source.name!r}: unknown protocol {source.protocol!r}"
                )
        seen_points: set[str] = set()
        for point in self.points:
            if point.name in seen_points:
                problems.append(f"duplicate point name {point.name!r}")
            seen_points.add(point.name)
            if point.source not in source_names:
                problems.append(
                    f"point {point.name!r} references unknown source "
                    f"{point.source!r}"
                )
        return problems
