"""SCADA HMI runtime: polling, alarms, event log, operator commands.

The HMI's internal tag store is handle based: every configured point is
interned once into a private :class:`~repro.pointdb.registry.PointRegistry`
and alarm evaluation subscribes to the point's handle, so it runs only when
a polled value actually *changed* — a steady plant costs poll traffic but
no alarm/event processing.  Polling itself stays periodic because the data
sources (Modbus/MMS servers across the emulated network) are pull-only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.iec61850.mms import MmsClient
from repro.kernel import MS, SECOND
from repro.modbus import ModbusClient
from repro.netem.host import Host
from repro.pointdb import PointHandle, PointRegistry, PointType
from repro.scada.config import DataPointConfig, DataSourceConfig, ScadaConfig


class ScadaError(Exception):
    """Configuration or command failure in the HMI."""


class PointQuality(enum.Enum):
    INIT = "init"  # never polled successfully
    GOOD = "good"
    STALE = "stale"  # no fresh value within 3 poll intervals


@dataclass
class PointValue:
    value: Any
    time_us: int
    quality: PointQuality = PointQuality.INIT


@dataclass(frozen=True)
class AlarmEvent:
    time_us: int
    point: str
    kind: str  # "HIGH" | "LOW" | "RETURN_TO_NORMAL" | "COMMAND" | "QUALITY"
    value: Any

    def describe(self) -> str:
        return f"[{self.time_us / 1e6:.3f}s] {self.point}: {self.kind} ({self.value})"


class ScadaHmi:
    """The operator's view of the plant, fed by polling data sources."""

    def __init__(self, host: Host, config: ScadaConfig) -> None:
        problems = config.validate()
        if problems:
            raise ScadaError("invalid SCADA config: " + "; ".join(problems))
        self.host = host
        self.config = config
        self.values: dict[str, PointValue] = {
            point.name: PointValue(value=None, time_us=0)
            for point in config.points
        }
        self.events: list[AlarmEvent] = []
        self.active_alarms: dict[str, str] = {}
        #: Live alarm observer (service event broker); called with each
        #: :class:`AlarmEvent` as it is recorded.  ``None`` in batch runs.
        self.alarm_observer: Optional[Any] = None
        self._modbus: dict[str, ModbusClient] = {}
        self._mms: dict[str, MmsClient] = {}
        self._tasks = []
        self.poll_count = 0
        self.command_count = 0
        #: Polled values identical to the stored tag (no re-processing).
        self.suppressed_updates = 0
        self.started = False
        # Handle-based tag store: one typed slot per configured point;
        # alarm checks ride the delta subscription, firing only on change.
        self.registry = PointRegistry()
        self._handles: dict[str, PointHandle] = {}
        self._updaters: dict[str, Any] = {}
        for point in config.points:
            ptype = (
                PointType.BOOL if point.kind == "binary" else PointType.FLOAT
            )
            handle = self.registry.resolve(point.name, ptype)
            self._handles[point.name] = handle
            self.registry.subscribe(
                handle,
                lambda _handle, value, p=point: self._on_tag_change(p, value),
            )
            self._updaters[point.name] = self._make_updater(point)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.started:
            return
        self.started = True
        for source in self.config.sources:
            self._connect_source(source)
            interval = int(source.poll_interval_ms * MS)
            task = self.host.simulator.every(
                interval,
                lambda s=source: self._poll_source(s),
                label=f"scada-poll:{source.name}",
            )
            self._tasks.append(task)

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
        self.started = False

    def close(self) -> None:
        """Stop polling and drop protocol clients + the alarm observer.

        The HMI's tag registry is private, so there are no shared-registry
        subscriptions to detach; close exists for symmetric teardown from
        :meth:`repro.range.CyberRange.close`.
        """
        self.stop()
        self.alarm_observer = None
        self._modbus.clear()
        self._mms.clear()

    def _connect_source(self, source: DataSourceConfig) -> None:
        if source.protocol == "MODBUS":
            client = ModbusClient(
                self.host, source.host_ip, port=source.port or 502
            )
            client.connect()
            self._modbus[source.name] = client
        else:
            client = MmsClient(self.host, source.host_ip, port=source.port or 102)
            client.connect()
            self._mms[source.name] = client

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def _poll_source(self, source: DataSourceConfig) -> None:
        self.poll_count += 1
        points = [p for p in self.config.points if p.source == source.name]
        self._reconnect_if_needed(source)
        if source.protocol == "MODBUS":
            self._poll_modbus(source, points)
        else:
            self._poll_mms(source, points)
        self._update_quality(source, points)

    def _reconnect_if_needed(self, source: DataSourceConfig) -> None:
        """Sources drop on network faults/attacks; polling re-dials them."""
        if source.protocol == "MODBUS":
            client = self._modbus[source.name]
        else:
            client = self._mms[source.name]
        if not client.connected:
            client.connect()

    def _poll_modbus(
        self, source: DataSourceConfig, points: list[DataPointConfig]
    ) -> None:
        client = self._modbus[source.name]
        if not client.connected:
            return
        for point in points:
            callback = self._updaters[point.name]
            if point.table == "coil":
                client.read_coils(
                    point.address, 1, lambda r, cb=callback: cb(_first(r.values))
                )
            elif point.table == "discrete":
                client.read_discrete_inputs(
                    point.address, 1, lambda r, cb=callback: cb(_first(r.values))
                )
            elif point.table == "holding":
                client.read_holding_registers(
                    point.address, 1, lambda r, cb=callback: cb(_first(r.values))
                )
            elif point.table == "input":
                client.read_input_registers(
                    point.address, 1, lambda r, cb=callback: cb(_first(r.values))
                )
            elif point.table == "input_float":
                client.read_input_registers(
                    point.address, 2, lambda r, cb=callback: cb(_to_float(r.values))
                )
            elif point.table == "holding_float":
                client.read_holding_registers(
                    point.address, 2, lambda r, cb=callback: cb(_to_float(r.values))
                )

    def _poll_mms(
        self, source: DataSourceConfig, points: list[DataPointConfig]
    ) -> None:
        client = self._mms[source.name]
        if not client.connected:
            return
        references = [point.object_ref for point in points if point.object_ref]
        if not references:
            return
        by_ref = {point.object_ref: point for point in points}

        def on_reply(results: Any, error: Optional[str]) -> None:
            if error or not isinstance(results, list):
                return
            for reference, entry in zip(references, results):
                if isinstance(entry, dict) and "value" in entry:
                    point = by_ref.get(reference)
                    if point is not None:
                        self._updaters[point.name](entry["value"])

        client.read(references, on_reply)

    def _make_updater(self, point: DataPointConfig):
        handle = self._handles[point.name]
        point_value = self.values[point.name]

        def update(raw: Any) -> None:
            if raw is None:
                return
            if point.kind == "binary":
                value: Any = bool(raw)
            else:
                try:
                    value = float(raw) * point.scale
                except (TypeError, ValueError):
                    return
            # Freshness is tracked on every successful poll; value and
            # alarm processing only when the tag actually changed (the
            # registry write suppresses equal values and the subscription
            # fires _on_tag_change otherwise).
            point_value.time_us = self.host.simulator.now
            point_value.quality = PointQuality.GOOD
            if not self.registry.write_now(handle, value):
                self.suppressed_updates += 1

        return update

    def _record_event(self, event: AlarmEvent) -> None:
        self.events.append(event)
        if self.alarm_observer is not None:
            try:
                self.alarm_observer(event)
            except Exception:  # observer bugs must not break polling
                pass

    def _on_tag_change(self, point: DataPointConfig, value: Any) -> None:
        self.values[point.name].value = value
        self._check_alarms(point, value, self.host.simulator.now)

    def _check_alarms(self, point: DataPointConfig, value: Any, now: int) -> None:
        if point.kind != "analog":
            return
        violation = point.alarms.violated(float(value))
        active = self.active_alarms.get(point.name)
        if violation and violation != active:
            self.active_alarms[point.name] = violation
            self._record_event(AlarmEvent(now, point.name, violation, value))
        elif not violation and active:
            del self.active_alarms[point.name]
            self._record_event(
                AlarmEvent(now, point.name, "RETURN_TO_NORMAL", value)
            )

    def _update_quality(
        self, source: DataSourceConfig, points: list[DataPointConfig]
    ) -> None:
        now = self.host.simulator.now
        stale_after = int(source.poll_interval_ms * MS) * 3
        for point in points:
            current = self.values[point.name]
            if current.quality is PointQuality.INIT:
                continue
            if now - current.time_us > stale_after:
                if current.quality is not PointQuality.STALE:
                    current.quality = PointQuality.STALE
                    self._record_event(
                        AlarmEvent(now, point.name, "QUALITY", "stale")
                    )

    # ------------------------------------------------------------------
    # Operator view / commands
    # ------------------------------------------------------------------
    def value_of(self, point_name: str) -> Any:
        point_value = self.values.get(point_name)
        return None if point_value is None else point_value.value

    def panel(self) -> dict[str, Any]:
        """Current HMI screen: point → value."""
        return {name: pv.value for name, pv in sorted(self.values.items())}

    def operate(self, point_name: str, value: Any) -> None:
        """Operator command on a writable point (e.g. breaker open/close)."""
        point = self.config.find_point(point_name)
        if point is None:
            raise ScadaError(f"unknown point {point_name!r}")
        if not point.writable:
            raise ScadaError(f"point {point_name!r} is not writable")
        source = self.config.find_source(point.source)
        assert source is not None  # validated at construction
        now = self.host.simulator.now
        self.command_count += 1
        self._record_event(AlarmEvent(now, point_name, "COMMAND", value))
        if source.protocol == "MODBUS":
            client = self._modbus[source.name]
            if not client.connected:
                raise ScadaError(f"source {source.name!r} not connected")
            table = point.write_table or point.table
            address = (
                point.write_address if point.write_address >= 0 else point.address
            )
            if table == "coil":
                client.write_coil(address, 1 if value else 0)
            elif table in ("holding", "holding_float"):
                client.write_register(address, int(value) & 0xFFFF)
            else:
                raise ScadaError(
                    f"point {point_name!r}: table {table!r} is not writable"
                )
        else:
            client = self._mms[source.name]
            if not client.connected:
                raise ScadaError(f"source {source.name!r} not connected")
            reference = point.write_object_ref or point.object_ref
            client.write(reference, value)


def _first(values: list[int]) -> Optional[int]:
    return values[0] if values else None


def _to_float(values: list[int]) -> Optional[float]:
    if len(values) < 2:
        return None
    from repro.modbus.databank import registers_to_float

    return registers_to_float(values[0], values[1])
