"""Virtual SCADA HMI (SCADABR substitute).

The paper's cyber range uses SCADABR: "The settings on data source (e.g.,
PLCs) and data points has to be configured ... We have implemented a script
to translate the SCADA Config XML into a JSON format that SCADABR can
import" (§III-B).  This package reproduces both halves:

* :class:`ScadaHmi` — the HMI runtime: polls data sources (Modbus to PLCs,
  MMS to IEDs), maintains point values with quality, raises/clears alarms,
  keeps an operator event log, and issues manual control commands.
* :func:`import_scadabr_json` — ingests the JSON produced by the SG-ML
  SCADA Config Parser (:mod:`repro.sgml.scada_config`).
"""

from repro.scada.config import (
    AlarmLimits,
    DataPointConfig,
    DataSourceConfig,
    ScadaConfig,
)
from repro.scada.hmi import (
    AlarmEvent,
    PointQuality,
    PointValue,
    ScadaError,
    ScadaHmi,
)
from repro.scada.importer import import_scadabr_json

__all__ = [
    "AlarmEvent",
    "AlarmLimits",
    "DataPointConfig",
    "DataSourceConfig",
    "PointQuality",
    "PointValue",
    "ScadaConfig",
    "ScadaError",
    "ScadaHmi",
    "import_scadabr_json",
]
