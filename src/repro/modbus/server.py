"""Modbus/TCP server bound to a virtual host."""

from __future__ import annotations

from repro.modbus.databank import ModbusDataBank
from repro.modbus.protocol import (
    ExceptionCode,
    FrameBuffer,
    FunctionCode,
    MODBUS_PORT,
    ModbusError,
    ModbusRequest,
    build_response,
    parse_request,
)
from repro.netem.host import Host
from repro.netem.tcp import TcpConnection


class ModbusServer:
    """Serves a :class:`ModbusDataBank` on TCP port 502."""

    def __init__(
        self, host: Host, databank: ModbusDataBank, port: int = MODBUS_PORT
    ) -> None:
        self.host = host
        self.databank = databank
        self.port = port
        self.request_count = 0
        self.started = False

    def start(self) -> None:
        if self.started:
            return
        self.host.tcp.listen(self.port, self._on_accept)
        self.started = True

    def _on_accept(self, connection: TcpConnection) -> None:
        buffer = FrameBuffer()
        connection.on_data = lambda data: self._on_data(connection, buffer, data)

    def _on_data(
        self, connection: TcpConnection, buffer: FrameBuffer, data: bytes
    ) -> None:
        for frame in buffer.feed(data):
            try:
                request = parse_request(frame)
            except ModbusError:
                continue
            connection.send(self._serve(request))

    def _serve(self, request: ModbusRequest) -> bytes:
        self.request_count += 1
        bank = self.databank
        try:
            if request.function == FunctionCode.READ_COILS:
                return build_response(
                    request, bank.read_coils(request.address, request.count)
                )
            if request.function == FunctionCode.READ_DISCRETE_INPUTS:
                return build_response(
                    request,
                    bank.read_discrete_inputs(request.address, request.count),
                )
            if request.function == FunctionCode.READ_HOLDING_REGISTERS:
                return build_response(
                    request,
                    bank.read_holding_registers(request.address, request.count),
                )
            if request.function == FunctionCode.READ_INPUT_REGISTERS:
                return build_response(
                    request,
                    bank.read_input_registers(request.address, request.count),
                )
            if request.function == FunctionCode.WRITE_SINGLE_COIL:
                bank.write_coil(request.address, request.values[0])
                return build_response(request)
            if request.function == FunctionCode.WRITE_SINGLE_REGISTER:
                bank.write_register(request.address, request.values[0])
                return build_response(request)
            if request.function == FunctionCode.WRITE_MULTIPLE_COILS:
                for offset, value in enumerate(request.values):
                    bank.write_coil(request.address + offset, value)
                return build_response(request)
            if request.function == FunctionCode.WRITE_MULTIPLE_REGISTERS:
                for offset, value in enumerate(request.values):
                    bank.write_register(request.address + offset, value)
                return build_response(request)
            return build_response(
                request, exception=ExceptionCode.ILLEGAL_FUNCTION
            )
        except IndexError:
            return build_response(
                request, exception=ExceptionCode.ILLEGAL_DATA_ADDRESS
            )
        except Exception:
            return build_response(
                request, exception=ExceptionCode.SERVER_DEVICE_FAILURE
            )
