"""Modbus/TCP wire format: MBAP header + PDU.

MBAP: transaction id (2 bytes), protocol id (2, always 0), length (2),
unit id (1).  PDU: function code (1) + function-specific data.  Exception
responses set the high bit of the function code.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Optional

MODBUS_PORT = 502
_MBAP = struct.Struct(">HHHB")


class ModbusError(Exception):
    """Malformed frame or protocol violation."""


class FunctionCode(enum.IntEnum):
    READ_COILS = 1
    READ_DISCRETE_INPUTS = 2
    READ_HOLDING_REGISTERS = 3
    READ_INPUT_REGISTERS = 4
    WRITE_SINGLE_COIL = 5
    WRITE_SINGLE_REGISTER = 6
    WRITE_MULTIPLE_COILS = 15
    WRITE_MULTIPLE_REGISTERS = 16


class ExceptionCode(enum.IntEnum):
    ILLEGAL_FUNCTION = 1
    ILLEGAL_DATA_ADDRESS = 2
    ILLEGAL_DATA_VALUE = 3
    SERVER_DEVICE_FAILURE = 4


_READ_CODES = {
    FunctionCode.READ_COILS,
    FunctionCode.READ_DISCRETE_INPUTS,
    FunctionCode.READ_HOLDING_REGISTERS,
    FunctionCode.READ_INPUT_REGISTERS,
}


@dataclass
class ModbusRequest:
    transaction_id: int
    unit_id: int
    function: FunctionCode
    address: int
    count: int = 0  # reads and multiple-writes
    values: list[int] = field(default_factory=list)  # writes

    @property
    def is_read(self) -> bool:
        return self.function in _READ_CODES


@dataclass
class ModbusResponse:
    transaction_id: int
    unit_id: int
    function: int
    values: list[int] = field(default_factory=list)  # read results
    address: int = 0  # echoed for writes
    count: int = 0
    exception: Optional[ExceptionCode] = None

    @property
    def ok(self) -> bool:
        return self.exception is None


# ---------------------------------------------------------------------------
# Building
# ---------------------------------------------------------------------------


def build_request(request: ModbusRequest) -> bytes:
    function = request.function
    if request.is_read:
        pdu = struct.pack(">BHH", function, request.address, request.count)
    elif function == FunctionCode.WRITE_SINGLE_COIL:
        value = 0xFF00 if request.values and request.values[0] else 0x0000
        pdu = struct.pack(">BHH", function, request.address, value)
    elif function == FunctionCode.WRITE_SINGLE_REGISTER:
        pdu = struct.pack(
            ">BHH", function, request.address, request.values[0] & 0xFFFF
        )
    elif function == FunctionCode.WRITE_MULTIPLE_COILS:
        packed = _pack_bits(request.values)
        pdu = (
            struct.pack(
                ">BHHB", function, request.address, len(request.values), len(packed)
            )
            + packed
        )
    elif function == FunctionCode.WRITE_MULTIPLE_REGISTERS:
        payload = b"".join(
            struct.pack(">H", value & 0xFFFF) for value in request.values
        )
        pdu = (
            struct.pack(
                ">BHHB",
                function,
                request.address,
                len(request.values),
                len(payload),
            )
            + payload
        )
    else:
        raise ModbusError(f"cannot build request for function {function}")
    return _mbap(request.transaction_id, request.unit_id, pdu)


def build_response(
    request: ModbusRequest,
    values: Optional[list[int]] = None,
    exception: Optional[ExceptionCode] = None,
) -> bytes:
    if exception is not None:
        pdu = struct.pack(">BB", request.function | 0x80, exception)
        return _mbap(request.transaction_id, request.unit_id, pdu)
    values = values or []
    function = request.function
    if function in (FunctionCode.READ_COILS, FunctionCode.READ_DISCRETE_INPUTS):
        packed = _pack_bits(values)
        pdu = struct.pack(">BB", function, len(packed)) + packed
    elif function in (
        FunctionCode.READ_HOLDING_REGISTERS,
        FunctionCode.READ_INPUT_REGISTERS,
    ):
        payload = b"".join(struct.pack(">H", value & 0xFFFF) for value in values)
        pdu = struct.pack(">BB", function, len(payload)) + payload
    elif function == FunctionCode.WRITE_SINGLE_COIL:
        value = 0xFF00 if request.values and request.values[0] else 0x0000
        pdu = struct.pack(">BHH", function, request.address, value)
    elif function == FunctionCode.WRITE_SINGLE_REGISTER:
        pdu = struct.pack(
            ">BHH", function, request.address, request.values[0] & 0xFFFF
        )
    elif function in (
        FunctionCode.WRITE_MULTIPLE_COILS,
        FunctionCode.WRITE_MULTIPLE_REGISTERS,
    ):
        pdu = struct.pack(">BHH", function, request.address, len(request.values))
    else:
        raise ModbusError(f"cannot build response for function {function}")
    return _mbap(request.transaction_id, request.unit_id, pdu)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


class FrameBuffer:
    """Reassembles MBAP frames from a TCP stream."""

    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer += data
        frames = []
        while len(self._buffer) >= 7:
            _, _, length, _ = _MBAP.unpack(self._buffer[:7])
            total = 6 + length
            if len(self._buffer) < total:
                break
            frames.append(self._buffer[:total])
            self._buffer = self._buffer[total:]
        return frames


def parse_request(frame: bytes) -> ModbusRequest:
    transaction_id, unit_id, pdu = _split(frame)
    if not pdu:
        raise ModbusError("empty PDU")
    try:
        function = FunctionCode(pdu[0])
    except ValueError as exc:
        raise ModbusError(f"unsupported function code {pdu[0]}") from exc
    request = ModbusRequest(
        transaction_id=transaction_id, unit_id=unit_id, function=function, address=0
    )
    if function in _READ_CODES:
        request.address, request.count = struct.unpack(">HH", pdu[1:5])
    elif function == FunctionCode.WRITE_SINGLE_COIL:
        address, raw = struct.unpack(">HH", pdu[1:5])
        request.address = address
        request.values = [1 if raw == 0xFF00 else 0]
    elif function == FunctionCode.WRITE_SINGLE_REGISTER:
        request.address, value = struct.unpack(">HH", pdu[1:5])
        request.values = [value]
    elif function == FunctionCode.WRITE_MULTIPLE_COILS:
        address, count, byte_count = struct.unpack(">HHB", pdu[1:6])
        request.address = address
        request.values = _unpack_bits(pdu[6 : 6 + byte_count], count)
    elif function == FunctionCode.WRITE_MULTIPLE_REGISTERS:
        address, count, byte_count = struct.unpack(">HHB", pdu[1:6])
        request.address = address
        request.values = [
            struct.unpack(">H", pdu[6 + 2 * i : 8 + 2 * i])[0] for i in range(count)
        ]
    return request


def parse_response(frame: bytes, request: ModbusRequest) -> ModbusResponse:
    transaction_id, unit_id, pdu = _split(frame)
    if not pdu:
        raise ModbusError("empty PDU")
    function = pdu[0]
    if function & 0x80:
        return ModbusResponse(
            transaction_id=transaction_id,
            unit_id=unit_id,
            function=function & 0x7F,
            exception=ExceptionCode(pdu[1]),
        )
    response = ModbusResponse(
        transaction_id=transaction_id, unit_id=unit_id, function=function
    )
    code = FunctionCode(function)
    if code in (FunctionCode.READ_COILS, FunctionCode.READ_DISCRETE_INPUTS):
        byte_count = pdu[1]
        response.values = _unpack_bits(pdu[2 : 2 + byte_count], request.count)
    elif code in (
        FunctionCode.READ_HOLDING_REGISTERS,
        FunctionCode.READ_INPUT_REGISTERS,
    ):
        byte_count = pdu[1]
        response.values = [
            struct.unpack(">H", pdu[2 + 2 * i : 4 + 2 * i])[0]
            for i in range(byte_count // 2)
        ]
    elif code in (FunctionCode.WRITE_SINGLE_COIL, FunctionCode.WRITE_SINGLE_REGISTER):
        response.address, value = struct.unpack(">HH", pdu[1:5])
        response.values = [value]
    elif code in (
        FunctionCode.WRITE_MULTIPLE_COILS,
        FunctionCode.WRITE_MULTIPLE_REGISTERS,
    ):
        response.address, response.count = struct.unpack(">HH", pdu[1:5])
    return response


# ---------------------------------------------------------------------------


def _mbap(transaction_id: int, unit_id: int, pdu: bytes) -> bytes:
    return _MBAP.pack(transaction_id, 0, len(pdu) + 1, unit_id) + pdu


def _split(frame: bytes) -> tuple[int, int, bytes]:
    if len(frame) < 8:
        raise ModbusError(f"frame too short ({len(frame)} bytes)")
    transaction_id, protocol_id, length, unit_id = _MBAP.unpack(frame[:7])
    if protocol_id != 0:
        raise ModbusError(f"bad protocol id {protocol_id}")
    pdu = frame[7 : 6 + length]
    return transaction_id, unit_id, pdu


def _pack_bits(values: list[int]) -> bytes:
    packed = bytearray((len(values) + 7) // 8)
    for i, value in enumerate(values):
        if value:
            packed[i // 8] |= 1 << (i % 8)
    return bytes(packed)


def _unpack_bits(data: bytes, count: int) -> list[int]:
    bits = []
    for i in range(count):
        byte = data[i // 8] if i // 8 < len(data) else 0
        bits.append((byte >> (i % 8)) & 1)
    return bits
