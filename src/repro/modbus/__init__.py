"""Modbus/TCP client and server.

OpenPLC61850 (the paper's virtual PLC) speaks Modbus northbound to the
SCADA HMI and MMS southbound to IEDs; this package provides the Modbus leg
with real MBAP/PDU byte framing (function codes 1-6, 15, 16).
"""

from repro.modbus.databank import ModbusDataBank
from repro.modbus.protocol import (
    MODBUS_PORT,
    ExceptionCode,
    FunctionCode,
    ModbusError,
    build_request,
    build_response,
    parse_request,
    parse_response,
)
from repro.modbus.client import ModbusClient
from repro.modbus.server import ModbusServer

__all__ = [
    "ExceptionCode",
    "FunctionCode",
    "MODBUS_PORT",
    "ModbusClient",
    "ModbusDataBank",
    "ModbusError",
    "ModbusServer",
    "build_request",
    "build_response",
    "parse_request",
    "parse_response",
]
