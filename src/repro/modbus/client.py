"""Asynchronous Modbus/TCP client (the SCADA HMI's data-source driver)."""

from __future__ import annotations

from typing import Callable, Optional

from repro.modbus.protocol import (
    FrameBuffer,
    FunctionCode,
    MODBUS_PORT,
    ModbusError,
    ModbusRequest,
    ModbusResponse,
    build_request,
    parse_response,
)
from repro.netem.host import Host
from repro.netem.tcp import TcpConnection

ReplyCallback = Callable[[ModbusResponse], None]


class ModbusClient:
    """One TCP connection to a Modbus server, with transaction matching."""

    def __init__(
        self, host: Host, server_ip: str, port: int = MODBUS_PORT, unit_id: int = 1
    ) -> None:
        self.host = host
        self.server_ip = server_ip
        self.port = port
        self.unit_id = unit_id
        self._connection: Optional[TcpConnection] = None
        self._buffer = FrameBuffer()
        self._pending: dict[int, tuple[ModbusRequest, ReplyCallback]] = {}
        self._transaction_id = 0
        self._ready_callbacks: list[Callable[[], None]] = []
        self.on_disconnect: Optional[Callable[[], None]] = None

    def connect(self) -> None:
        if self._connection is not None:
            return
        self._connection = self.host.tcp.connect(
            self.server_ip,
            self.port,
            on_open=self._on_open,
            on_data=self._on_data,
            on_close=self._on_close,
        )

    @property
    def connected(self) -> bool:
        return self._connection is not None and self._connection.established

    def when_ready(self, callback: Callable[[], None]) -> None:
        if self.connected:
            callback()
        else:
            self._ready_callbacks.append(callback)

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def read_coils(self, address: int, count: int, on_reply: ReplyCallback) -> None:
        self._send(FunctionCode.READ_COILS, address, count=count, on_reply=on_reply)

    def read_discrete_inputs(
        self, address: int, count: int, on_reply: ReplyCallback
    ) -> None:
        self._send(
            FunctionCode.READ_DISCRETE_INPUTS, address, count=count, on_reply=on_reply
        )

    def read_holding_registers(
        self, address: int, count: int, on_reply: ReplyCallback
    ) -> None:
        self._send(
            FunctionCode.READ_HOLDING_REGISTERS,
            address,
            count=count,
            on_reply=on_reply,
        )

    def read_input_registers(
        self, address: int, count: int, on_reply: ReplyCallback
    ) -> None:
        self._send(
            FunctionCode.READ_INPUT_REGISTERS, address, count=count, on_reply=on_reply
        )

    def write_coil(
        self, address: int, value: int, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        self._send(
            FunctionCode.WRITE_SINGLE_COIL,
            address,
            values=[1 if value else 0],
            on_reply=on_reply,
        )

    def write_register(
        self, address: int, value: int, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        self._send(
            FunctionCode.WRITE_SINGLE_REGISTER,
            address,
            values=[value],
            on_reply=on_reply,
        )

    def write_registers(
        self,
        address: int,
        values: list[int],
        on_reply: Optional[ReplyCallback] = None,
    ) -> None:
        self._send(
            FunctionCode.WRITE_MULTIPLE_REGISTERS,
            address,
            values=values,
            on_reply=on_reply,
        )

    # ------------------------------------------------------------------
    def _send(
        self,
        function: FunctionCode,
        address: int,
        count: int = 0,
        values: Optional[list[int]] = None,
        on_reply: Optional[ReplyCallback] = None,
    ) -> None:
        if not self.connected:
            raise ModbusError(f"{self.host.name}: modbus client not connected")
        self._transaction_id = (self._transaction_id + 1) & 0xFFFF
        request = ModbusRequest(
            transaction_id=self._transaction_id,
            unit_id=self.unit_id,
            function=function,
            address=address,
            count=count,
            values=values or [],
        )
        if on_reply is not None:
            self._pending[request.transaction_id] = (request, on_reply)
        self._connection.send(build_request(request))

    def _on_open(self) -> None:
        callbacks, self._ready_callbacks = self._ready_callbacks, []
        for callback in callbacks:
            callback()

    def _on_data(self, data: bytes) -> None:
        for frame in self._buffer.feed(data):
            transaction_id = int.from_bytes(frame[:2], "big")
            pending = self._pending.pop(transaction_id, None)
            if pending is None:
                continue
            request, callback = pending
            try:
                response = parse_response(frame, request)
            except ModbusError:
                continue
            callback(response)

    def _on_close(self) -> None:
        self._connection = None
        self._pending.clear()
        if self.on_disconnect is not None:
            self.on_disconnect()
