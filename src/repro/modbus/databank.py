"""Modbus data model: coils, discrete inputs, holding/input registers.

The PLC runtime maps its IEC 61131 located variables (%QX/%IX/%QW/%IW) into
a databank; the SCADA HMI polls it over Modbus/TCP.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional


class ModbusDataBank:
    """Sparse address → value storage for the four Modbus tables."""

    def __init__(self, size: int = 65536) -> None:
        self.size = size
        self.coils: dict[int, int] = {}
        self.discrete_inputs: dict[int, int] = {}
        self.holding_registers: dict[int, int] = {}
        self.input_registers: dict[int, int] = {}
        #: Called after a client writes a coil/register: (table, address, value).
        self.on_write: Optional[Callable[[str, int, int], None]] = None

    # -- bits ----------------------------------------------------------
    def read_coils(self, address: int, count: int) -> list[int]:
        self._check(address, count)
        return [self.coils.get(address + i, 0) for i in range(count)]

    def read_discrete_inputs(self, address: int, count: int) -> list[int]:
        self._check(address, count)
        return [self.discrete_inputs.get(address + i, 0) for i in range(count)]

    def write_coil(self, address: int, value: int) -> None:
        self._check(address, 1)
        self.coils[address] = 1 if value else 0
        if self.on_write:
            self.on_write("coil", address, self.coils[address])

    def set_discrete_input(self, address: int, value: int) -> None:
        self._check(address, 1)
        self.discrete_inputs[address] = 1 if value else 0

    # -- registers -----------------------------------------------------
    def read_holding_registers(self, address: int, count: int) -> list[int]:
        self._check(address, count)
        return [self.holding_registers.get(address + i, 0) for i in range(count)]

    def read_input_registers(self, address: int, count: int) -> list[int]:
        self._check(address, count)
        return [self.input_registers.get(address + i, 0) for i in range(count)]

    def write_register(self, address: int, value: int) -> None:
        self._check(address, 1)
        self.holding_registers[address] = value & 0xFFFF
        if self.on_write:
            self.on_write("holding", address, value & 0xFFFF)

    def set_input_register(self, address: int, value: int) -> None:
        self._check(address, 1)
        self.input_registers[address] = value & 0xFFFF

    def set_holding_register(self, address: int, value: int) -> None:
        """Server-side update that does not fire ``on_write``."""
        self._check(address, 1)
        self.holding_registers[address] = value & 0xFFFF

    # -- float helpers (two registers, big-endian IEEE 754) -------------
    def set_input_float(self, address: int, value: float) -> None:
        high, low = struct.unpack(">HH", struct.pack(">f", value))
        self.set_input_register(address, high)
        self.set_input_register(address + 1, low)

    def read_input_float(self, address: int) -> float:
        high = self.input_registers.get(address, 0)
        low = self.input_registers.get(address + 1, 0)
        return struct.unpack(">f", struct.pack(">HH", high, low))[0]

    def set_holding_float(self, address: int, value: float) -> None:
        high, low = struct.unpack(">HH", struct.pack(">f", value))
        self.set_holding_register(address, high)
        self.set_holding_register(address + 1, low)

    def read_holding_float(self, address: int) -> float:
        high = self.holding_registers.get(address, 0)
        low = self.holding_registers.get(address + 1, 0)
        return struct.unpack(">f", struct.pack(">HH", high, low))[0]

    # ------------------------------------------------------------------
    def _check(self, address: int, count: int) -> None:
        if address < 0 or count < 0 or address + count > self.size:
            raise IndexError(f"modbus address range {address}+{count} out of bounds")


def float_to_registers(value: float) -> tuple[int, int]:
    """IEEE 754 float32 → (high word, low word)."""
    high, low = struct.unpack(">HH", struct.pack(">f", value))
    return high, low


def registers_to_float(high: int, low: int) -> float:
    return struct.unpack(">f", struct.pack(">HH", high & 0xFFFF, low & 0xFFFF))[0]
