"""SSD Merger and SCD Merger (paper Fig. 3, first two toolchain modules).

For multi-substation models the SG-ML Processor first consolidates the
per-substation files:

* :func:`merge_ssd` combines several SSD files plus the tie-line content of
  SED files into one consolidated SSD, which the SSD Parser then processes
  exactly like a single-substation file (paper §III-B, "Generation of Power
  System Simulation Model").
* :func:`merge_scd` combines several SCD files into one consolidated SCD.
  Per the paper, the WAN between substations "is abstracted as a single
  switch connected to all substations": the merger inserts one ``WAN``
  subnetwork whose attached access points are the substation gateways.
"""

from __future__ import annotations

import copy
from typing import Optional, Sequence

from repro.scl.errors import SclValidationError
from repro.scl.model import (
    CommunicationSection,
    ConnectedAp,
    Header,
    SclDocument,
    SubNetwork,
)

#: Name of the synthetic WAN subnetwork inserted by the SCD merger.
WAN_SUBNETWORK = "WAN"


def merge_ssd(
    ssds: Sequence[SclDocument], sed: Optional[SclDocument] = None
) -> SclDocument:
    """Combine SSD documents (plus SED tie lines) into a consolidated SSD."""
    if not ssds:
        raise SclValidationError("merge_ssd requires at least one SSD document")
    merged = SclDocument(
        header=Header(id="+".join(doc.header.id or "ssd" for doc in ssds))
    )
    seen: set[str] = set()
    for document in ssds:
        for substation in document.substations:
            if substation.name in seen:
                raise SclValidationError(
                    f"duplicate substation {substation.name!r} across SSD files"
                )
            seen.add(substation.name)
            merged.substations.append(copy.deepcopy(substation))
        # Templates may be needed downstream; last writer wins on id clash.
        merged.templates.lnode_types.update(document.templates.lnode_types)
        merged.templates.do_types.update(document.templates.do_types)
        merged.templates.enum_types.update(document.templates.enum_types)
    if sed is not None:
        _check_tie_endpoints(merged, sed)
        merged.tie_lines.extend(copy.deepcopy(sed.tie_lines))
    return merged


def merge_scd(
    scds: Sequence[SclDocument],
    sed: Optional[SclDocument] = None,
    wan_latency_ms: float = 5.0,
    wan_bandwidth_mbps: float = 100.0,
) -> SclDocument:
    """Combine SCD documents into a consolidated SCD with one WAN subnet."""
    if not scds:
        raise SclValidationError("merge_scd requires at least one SCD document")
    merged = merge_ssd(scds, sed=sed)
    merged.communication = CommunicationSection()
    seen_ieds: set[str] = set()
    seen_subnets: set[str] = set()
    gateways: list[ConnectedAp] = []
    for document in scds:
        for ied in document.ieds:
            if ied.name in seen_ieds:
                raise SclValidationError(
                    f"duplicate IED {ied.name!r} across SCD files"
                )
            seen_ieds.add(ied.name)
            merged.ieds.append(copy.deepcopy(ied))
        if document.communication is None:
            continue
        for subnet in document.communication.subnetworks:
            if subnet.name in seen_subnets:
                raise SclValidationError(
                    f"duplicate subnetwork {subnet.name!r} across SCD files"
                )
            seen_subnets.add(subnet.name)
            merged.communication.subnetworks.append(copy.deepcopy(subnet))
            gateway = _subnet_gateway(subnet)
            if gateway is not None:
                gateways.append(gateway)

    if len(scds) > 1 or (sed is not None and sed.wan_links):
        # Paper §III-B: substations are joined by a WAN abstracted as a
        # single switch.  Attach each substation's gateway AP to it.
        wan = SubNetwork(
            name=WAN_SUBNETWORK,
            type="8-MMS",
            desc="Inter-substation WAN (single-switch abstraction)",
            attributes={
                "latencyMs": f"{wan_latency_ms:g}",
                "bandwidthMbps": f"{wan_bandwidth_mbps:g}",
            },
        )
        if sed is not None and sed.wan_links:
            first = sed.wan_links[0]
            wan.attributes["latencyMs"] = f"{first.latency_ms:g}"
            wan.attributes["bandwidthMbps"] = f"{first.bandwidth_mbps:g}"
        wan.connected_aps = gateways
        merged.communication.subnetworks.append(wan)
    return merged


def _subnet_gateway(subnet: SubNetwork) -> Optional[ConnectedAp]:
    """The AP representing the subnet's WAN gateway.

    Convention: an AP whose address carries an ``IP-GATEWAY`` equal to its
    own IP is the gateway node; otherwise the first AP with a gateway entry
    stands in (every station subnet has one in generated models).
    """
    candidate: Optional[ConnectedAp] = None
    for ap in subnet.connected_aps:
        gateway = ap.address.get("IP-GATEWAY", "")
        if not gateway:
            continue
        if gateway == ap.ip:
            return ConnectedAp(
                ied_name=ap.ied_name, ap_name=ap.ap_name, address=dict(ap.address)
            )
        if candidate is None:
            candidate = ap
    if candidate is None:
        return None
    return ConnectedAp(
        ied_name=candidate.ied_name,
        ap_name=candidate.ap_name,
        address=dict(candidate.address),
    )


def _check_tie_endpoints(merged: SclDocument, sed: SclDocument) -> None:
    names = {substation.name for substation in merged.substations}
    for tie in sed.tie_lines:
        for end in (tie.from_substation, tie.to_substation):
            if end not in names:
                raise SclValidationError(
                    f"SED tie line {tie.name!r} references substation "
                    f"{end!r} not present in the merged model"
                )
