"""Exception hierarchy for the SCL subsystem."""


class SclError(Exception):
    """Base class for all SCL-related failures."""


class SclParseError(SclError):
    """The XML could not be interpreted as a valid SCL document."""


class SclValidationError(SclError):
    """A structurally valid document violates a semantic constraint
    (e.g. a Terminal referencing a ConnectivityNode that does not exist)."""
