"""IEC 61850 SCL (System Configuration description Language) support.

Implements the four SCL file kinds the paper's Table I relies on:

* **SSD** (System Specification Description) — substation single-line
  diagram, voltage levels, bays, primary equipment.  Consumed by the SSD
  Parser to generate the power-system simulation model.
* **SCD** (System Configuration Description) — full system description
  including every IED and the Communication section.  Consumed by the
  network-topology generator (Mininet Launcher equivalent).
* **ICD** (IED Capability Description) — one IED's logical devices, logical
  nodes and data type templates.  Consumed by the Virtual IED Builder.
* **SED** (System Exchange Description) — electrical tie lines and WAN links
  between substations.  Consumed by the SSD/SCD mergers to build
  multi-substation models.

The object model lives in :mod:`repro.scl.model`; parsing and serialisation
are namespace tolerant (they accept both namespaced and plain SCL files).
"""

from repro.scl.errors import SclError, SclParseError, SclValidationError
from repro.scl.merge import merge_scd, merge_ssd
from repro.scl.model import (
    AccessPoint,
    Bay,
    CommunicationSection,
    ConductingEquipment,
    ConnectedAp,
    ConnectivityNode,
    DataTypeTemplates,
    DoType,
    DataAttribute,
    DataObject,
    EnumType,
    Header,
    Ied,
    LDevice,
    LNode,
    LNodeType,
    LogicalNode,
    PowerTransformer,
    SclDocument,
    SclFileKind,
    SubNetwork,
    Substation,
    Terminal,
    TieLine,
    TransformerWinding,
    VoltageLevel,
    WanLink,
)
from repro.scl.parser import parse_scl, parse_scl_file
from repro.scl.paths import ObjectReference
from repro.scl.writer import write_scl

__all__ = [
    "AccessPoint",
    "Bay",
    "CommunicationSection",
    "ConductingEquipment",
    "ConnectedAp",
    "ConnectivityNode",
    "DataAttribute",
    "DataObject",
    "DataTypeTemplates",
    "DoType",
    "EnumType",
    "Header",
    "Ied",
    "LDevice",
    "LNode",
    "LNodeType",
    "LogicalNode",
    "ObjectReference",
    "PowerTransformer",
    "SclDocument",
    "SclError",
    "SclFileKind",
    "SclParseError",
    "SclValidationError",
    "SubNetwork",
    "Substation",
    "Terminal",
    "TieLine",
    "TransformerWinding",
    "VoltageLevel",
    "WanLink",
    "merge_scd",
    "merge_ssd",
    "parse_scl",
    "parse_scl_file",
    "write_scl",
]
