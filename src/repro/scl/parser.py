"""SCL XML → object model parser.

Namespace handling: real-world SCL files use the
``http://www.iec.ch/61850/2003/SCL`` namespace, hand-written ones frequently
do not.  The parser strips namespaces on ingest so both are accepted; the
writer re-emits the standard namespace.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from typing import Optional

from repro.scl.errors import SclParseError
from repro.scl.model import (
    AccessPoint,
    Bay,
    CommunicationSection,
    ConductingEquipment,
    ConnectedAp,
    ConnectivityNode,
    DataAttribute,
    DataObject,
    DataTypeTemplates,
    DoType,
    EnumType,
    Header,
    Ied,
    LDevice,
    LNode,
    LNodeType,
    LogicalNode,
    PowerTransformer,
    SclDocument,
    SubNetwork,
    Substation,
    Terminal,
    TieLine,
    TransformerWinding,
    VoltageLevel,
    WanLink,
)

#: Multipliers for SCL Voltage elements (IEC 61850-6 value kinds).
_VOLTAGE_MULTIPLIERS = {"": 1.0, "k": 1e3, "M": 1e6, "m": 1e-3, "G": 1e9}


def _local(tag: str) -> str:
    """Strip ``{namespace}`` prefix from an element tag."""
    return tag.rsplit("}", 1)[-1]


def _children(element: ET.Element, name: str) -> list[ET.Element]:
    return [child for child in element if _local(child.tag) == name]

def _child(element: ET.Element, name: str) -> Optional[ET.Element]:
    found = _children(element, name)
    return found[0] if found else None


def _float_attr(element: ET.Element, name: str, default: float = 0.0) -> float:
    raw = element.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise SclParseError(
            f"<{_local(element.tag)}> attribute {name}={raw!r} is not numeric"
        ) from exc


def parse_scl_file(path: str) -> SclDocument:
    """Parse an SCL file from disk."""
    if not os.path.exists(path):
        raise SclParseError(f"SCL file not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        document = parse_scl(handle.read())
    document.source_path = path
    return document


def parse_scl(xml_text: str) -> SclDocument:
    """Parse SCL XML text into an :class:`SclDocument`."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise SclParseError(f"malformed XML: {exc}") from exc
    if _local(root.tag) != "SCL":
        raise SclParseError(f"root element is <{_local(root.tag)}>, expected <SCL>")

    document = SclDocument()
    header = _child(root, "Header")
    if header is not None:
        document.header = Header(
            id=header.get("id", ""),
            version=header.get("version", "1"),
            revision=header.get("revision", "A"),
            tool_id=header.get("toolID", "SG-ML"),
        )
    for element in _children(root, "Substation"):
        document.substations.append(_parse_substation(element))
    communication = _child(root, "Communication")
    if communication is not None:
        document.communication = _parse_communication(communication)
    for element in _children(root, "IED"):
        document.ieds.append(_parse_ied(element))
    templates = _child(root, "DataTypeTemplates")
    if templates is not None:
        document.templates = _parse_templates(templates)
    _parse_sgml_private(root, document)
    return document


# ---------------------------------------------------------------------------
# Substation section
# ---------------------------------------------------------------------------


def _parse_substation(element: ET.Element) -> Substation:
    substation = Substation(
        name=element.get("name", ""), desc=element.get("desc", "")
    )
    for vl_el in _children(element, "VoltageLevel"):
        substation.voltage_levels.append(_parse_voltage_level(vl_el))
    for tr_el in _children(element, "PowerTransformer"):
        substation.power_transformers.append(_parse_power_transformer(tr_el))
    return substation


def _parse_voltage_level(element: ET.Element) -> VoltageLevel:
    level = VoltageLevel(
        name=element.get("name", ""), desc=element.get("desc", "")
    )
    voltage = _child(element, "Voltage")
    if voltage is not None:
        multiplier = _VOLTAGE_MULTIPLIERS.get(voltage.get("multiplier", ""), 1.0)
        try:
            value = float(voltage.text or "0")
        except ValueError:
            value = 0.0
        level.voltage_kv = value * multiplier / 1e3
    for bay_el in _children(element, "Bay"):
        level.bays.append(_parse_bay(bay_el))
    return level


def _parse_bay(element: ET.Element) -> Bay:
    bay = Bay(name=element.get("name", ""), desc=element.get("desc", ""))
    for node_el in _children(element, "ConnectivityNode"):
        bay.connectivity_nodes.append(
            ConnectivityNode(
                name=node_el.get("name", ""),
                path_name=node_el.get("pathName", ""),
            )
        )
    for eq_el in _children(element, "ConductingEquipment"):
        bay.equipment.append(_parse_equipment(eq_el))
    for ln_el in _children(element, "LNode"):
        bay.lnodes.append(_parse_lnode(ln_el))
    return bay


def _parse_equipment(element: ET.Element) -> ConductingEquipment:
    equipment = ConductingEquipment(
        name=element.get("name", ""),
        type=element.get("type", ""),
        desc=element.get("desc", ""),
    )
    for terminal_el in _children(element, "Terminal"):
        equipment.terminals.append(_parse_terminal(terminal_el))
    for ln_el in _children(element, "LNode"):
        equipment.lnodes.append(_parse_lnode(ln_el))
    for private in _children(element, "Private"):
        if private.get("type", "").startswith("SG-ML"):
            for param in _children(private, "Param"):
                equipment.attributes[param.get("name", "")] = param.get("value", "")
    return equipment


def _parse_terminal(element: ET.Element) -> Terminal:
    return Terminal(
        name=element.get("name", ""),
        connectivity_node=element.get("connectivityNode", ""),
        c_node_name=element.get("cNodeName", ""),
    )


def _parse_lnode(element: ET.Element) -> LNode:
    return LNode(
        ied_name=element.get("iedName", ""),
        ld_inst=element.get("ldInst", ""),
        ln_class=element.get("lnClass", ""),
        ln_inst=element.get("lnInst", ""),
        prefix=element.get("prefix", ""),
    )


def _parse_power_transformer(element: ET.Element) -> PowerTransformer:
    transformer = PowerTransformer(
        name=element.get("name", ""), desc=element.get("desc", "")
    )
    for winding_el in _children(element, "TransformerWinding"):
        winding = TransformerWinding(name=winding_el.get("name", ""))
        for terminal_el in _children(winding_el, "Terminal"):
            winding.terminals.append(_parse_terminal(terminal_el))
        winding.rated_kv = _float_attr(winding_el, "ratedKV")
        winding.rated_mva = _float_attr(winding_el, "ratedMVA")
        transformer.windings.append(winding)
    for private in _children(element, "Private"):
        if private.get("type", "").startswith("SG-ML"):
            for param in _children(private, "Param"):
                transformer.attributes[param.get("name", "")] = param.get(
                    "value", ""
                )
    return transformer


# ---------------------------------------------------------------------------
# Communication section
# ---------------------------------------------------------------------------


def _parse_communication(element: ET.Element) -> CommunicationSection:
    communication = CommunicationSection()
    for subnet_el in _children(element, "SubNetwork"):
        subnet = SubNetwork(
            name=subnet_el.get("name", ""),
            type=subnet_el.get("type", "8-MMS"),
            desc=subnet_el.get("desc", ""),
        )
        for ap_el in _children(subnet_el, "ConnectedAP"):
            ap = ConnectedAp(
                ied_name=ap_el.get("iedName", ""),
                ap_name=ap_el.get("apName", "AP1"),
            )
            address = _child(ap_el, "Address")
            if address is not None:
                for p_el in _children(address, "P"):
                    ap.address[p_el.get("type", "")] = (p_el.text or "").strip()
            subnet.connected_aps.append(ap)
        for private in _children(subnet_el, "Private"):
            if private.get("type", "").startswith("SG-ML"):
                for param in _children(private, "Param"):
                    subnet.attributes[param.get("name", "")] = param.get(
                        "value", ""
                    )
        communication.subnetworks.append(subnet)
    return communication


# ---------------------------------------------------------------------------
# IED section
# ---------------------------------------------------------------------------


def _parse_ied(element: ET.Element) -> Ied:
    ied = Ied(
        name=element.get("name", ""),
        type=element.get("type", ""),
        manufacturer=element.get("manufacturer", "SG-ML"),
        config_version=element.get("configVersion", "1.0"),
        desc=element.get("desc", ""),
    )
    for ap_el in _children(element, "AccessPoint"):
        access_point = AccessPoint(name=ap_el.get("name", "AP1"))
        server = _child(ap_el, "Server")
        if server is not None:
            for ld_el in _children(server, "LDevice"):
                access_point.server_ldevices.append(_parse_ldevice(ld_el))
        ied.access_points.append(access_point)
    return ied


def _parse_ldevice(element: ET.Element) -> LDevice:
    ldevice = LDevice(inst=element.get("inst", ""), desc=element.get("desc", ""))
    ln0_el = _child(element, "LN0")
    if ln0_el is not None:
        ldevice.logical_nodes.append(_parse_ln(ln0_el, is_ln0=True))
    for ln_el in _children(element, "LN"):
        ldevice.logical_nodes.append(_parse_ln(ln_el, is_ln0=False))
    return ldevice


def _parse_ln(element: ET.Element, is_ln0: bool) -> LogicalNode:
    node = LogicalNode(
        ln_class=element.get("lnClass", "LLN0" if is_ln0 else ""),
        inst=element.get("inst", "" if is_ln0 else "1"),
        prefix=element.get("prefix", ""),
        ln_type=element.get("lnType", ""),
        desc=element.get("desc", ""),
        is_ln0=is_ln0,
    )
    for doi_el in _children(element, "DOI"):
        node.dois.append(_parse_doi(doi_el))
    return node


def _parse_doi(element: ET.Element) -> DataObject:
    data_object = DataObject(name=element.get("name", ""))
    for dai_el in _children(element, "DAI"):
        value_el = _child(dai_el, "Val")
        data_object.attributes.append(
            DataAttribute(
                name=dai_el.get("name", ""),
                value=(value_el.text or "").strip() if value_el is not None else "",
                fc=dai_el.get("fc", ""),
                b_type=dai_el.get("bType", ""),
            )
        )
    for sdi_el in _children(element, "SDI"):
        data_object.sub_objects.append(_parse_doi(sdi_el))
    return data_object


# ---------------------------------------------------------------------------
# DataTypeTemplates
# ---------------------------------------------------------------------------


def _parse_templates(element: ET.Element) -> DataTypeTemplates:
    templates = DataTypeTemplates()
    for lnt_el in _children(element, "LNodeType"):
        lnode_type = LNodeType(
            id=lnt_el.get("id", ""), ln_class=lnt_el.get("lnClass", "")
        )
        for do_el in _children(lnt_el, "DO"):
            lnode_type.dos[do_el.get("name", "")] = do_el.get("type", "")
        templates.lnode_types[lnode_type.id] = lnode_type
    for dot_el in _children(element, "DOType"):
        do_type = DoType(id=dot_el.get("id", ""), cdc=dot_el.get("cdc", ""))
        for da_el in _children(dot_el, "DA"):
            do_type.das[da_el.get("name", "")] = da_el.get("bType", "")
        templates.do_types[do_type.id] = do_type
    for enum_el in _children(element, "EnumType"):
        enum_type = EnumType(id=enum_el.get("id", ""))
        for val_el in _children(enum_el, "EnumVal"):
            try:
                ordinal = int(val_el.get("ord", "0"))
            except ValueError:
                continue
            enum_type.values[ordinal] = (val_el.text or "").strip()
        templates.enum_types[enum_type.id] = enum_type
    return templates


# ---------------------------------------------------------------------------
# SG-ML SED private content (tie lines and WAN links)
# ---------------------------------------------------------------------------


def _parse_sgml_private(root: ET.Element, document: SclDocument) -> None:
    for private in _children(root, "Private"):
        if private.get("type", "") != "SG-ML:SED":
            continue
        for tie_el in _children(private, "TieLine"):
            document.tie_lines.append(
                TieLine(
                    name=tie_el.get("name", ""),
                    from_substation=tie_el.get("fromSubstation", ""),
                    from_node=tie_el.get("fromNode", ""),
                    to_substation=tie_el.get("toSubstation", ""),
                    to_node=tie_el.get("toNode", ""),
                    r_ohm=_float_attr(tie_el, "r", 0.5),
                    x_ohm=_float_attr(tie_el, "x", 2.0),
                    b_us=_float_attr(tie_el, "b", 0.0),
                    length_km=_float_attr(tie_el, "length", 10.0),
                    max_i_ka=_float_attr(tie_el, "maxI", 1.0),
                )
            )
        for wan_el in _children(private, "WanLink"):
            document.wan_links.append(
                WanLink(
                    from_subnetwork=wan_el.get("fromSubNetwork", ""),
                    to_subnetwork=wan_el.get("toSubNetwork", ""),
                    bandwidth_mbps=_float_attr(wan_el, "bandwidthMbps", 100.0),
                    latency_ms=_float_attr(wan_el, "latencyMs", 5.0),
                )
            )
