"""IEC 61850 object references.

An object reference identifies a data attribute inside an IED's data model,
e.g. ``GIED1LD0/MMXU1.TotW.mag.f``:

* ``GIED1LD0``  — logical-device name (IED name + LDevice inst),
* ``MMXU1``     — logical node (prefix + class + instance),
* ``TotW.mag.f`` — data object, then nested data attributes.

These references are the addressing scheme of MMS reads/writes and of the
SG-ML IED-config point mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scl.errors import SclError


@dataclass(frozen=True)
class ObjectReference:
    """Parsed IEC 61850 object reference."""

    ldevice: str
    ln_name: str
    path: tuple[str, ...]  # DO name followed by DA names

    def __str__(self) -> str:
        tail = ".".join(self.path)
        if tail:
            return f"{self.ldevice}/{self.ln_name}.{tail}"
        return f"{self.ldevice}/{self.ln_name}"

    @property
    def do_name(self) -> str:
        return self.path[0] if self.path else ""

    @property
    def da_path(self) -> tuple[str, ...]:
        return self.path[1:]

    @classmethod
    def parse(cls, text: str) -> "ObjectReference":
        """Parse ``LD/LN.DO.da...`` into components."""
        if "/" not in text:
            raise SclError(f"object reference {text!r} missing '/' separator")
        ldevice, remainder = text.split("/", 1)
        if not ldevice:
            raise SclError(f"object reference {text!r} has empty logical device")
        parts = remainder.split(".")
        if not parts or not parts[0]:
            raise SclError(f"object reference {text!r} has empty logical node")
        return cls(ldevice=ldevice, ln_name=parts[0], path=tuple(parts[1:]))

    def child(self, *names: str) -> "ObjectReference":
        """Extend the attribute path (e.g. ``ref.child('mag', 'f')``)."""
        return ObjectReference(self.ldevice, self.ln_name, self.path + names)


def ldevice_name(ied_name: str, ld_inst: str) -> str:
    """MMS logical-device name: IED name concatenated with LDevice inst."""
    return f"{ied_name}{ld_inst}"
