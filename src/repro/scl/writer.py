"""Object model → SCL XML serialiser.

Round-trips with :mod:`repro.scl.parser`: ``parse_scl(write_scl(doc))``
produces an equivalent document.  Used by the SSD/SCD mergers (which emit
consolidated files, as in the paper's Fig. 3) and by the EPIC model
generator.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.scl.model import (
    Bay,
    ConductingEquipment,
    DataObject,
    Ied,
    LNode,
    PowerTransformer,
    SclDocument,
    Substation,
    Terminal,
)

SCL_NAMESPACE = "http://www.iec.ch/61850/2003/SCL"


def write_scl(document: SclDocument, pretty: bool = True) -> str:
    """Serialise an :class:`SclDocument` to XML text."""
    root = ET.Element("SCL", {"xmlns": SCL_NAMESPACE, "version": "2007"})
    ET.SubElement(
        root,
        "Header",
        {
            "id": document.header.id,
            "version": document.header.version,
            "revision": document.header.revision,
            "toolID": document.header.tool_id,
        },
    )
    for substation in document.substations:
        root.append(_substation_element(substation))
    if document.communication is not None:
        communication = ET.SubElement(root, "Communication")
        for subnet in document.communication.subnetworks:
            subnet_el = ET.SubElement(
                communication,
                "SubNetwork",
                {"name": subnet.name, "type": subnet.type},
            )
            if subnet.desc:
                subnet_el.set("desc", subnet.desc)
            _write_private_params(subnet_el, subnet.attributes)
            for ap in subnet.connected_aps:
                ap_el = ET.SubElement(
                    subnet_el,
                    "ConnectedAP",
                    {"iedName": ap.ied_name, "apName": ap.ap_name},
                )
                if ap.address:
                    address_el = ET.SubElement(ap_el, "Address")
                    for p_type, value in ap.address.items():
                        p_el = ET.SubElement(address_el, "P", {"type": p_type})
                        p_el.text = value
    for ied in document.ieds:
        root.append(_ied_element(ied))
    if (
        document.templates.lnode_types
        or document.templates.do_types
        or document.templates.enum_types
    ):
        root.append(_templates_element(document))
    if document.tie_lines or document.wan_links:
        root.append(_sed_private_element(document))

    text = ET.tostring(root, encoding="unicode")
    if not pretty:
        return text
    parsed = minidom.parseString(text)
    pretty_text = parsed.toprettyxml(indent="  ")
    # minidom adds blank lines between elements; strip them.
    lines = [line for line in pretty_text.splitlines() if line.strip()]
    return "\n".join(lines) + "\n"


def write_scl_file(document: SclDocument, path: str) -> str:
    """Serialise to disk; returns ``path`` for chaining."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_scl(document))
    return path


# ---------------------------------------------------------------------------
# Substation
# ---------------------------------------------------------------------------


def _substation_element(substation: Substation) -> ET.Element:
    element = ET.Element("Substation", {"name": substation.name})
    if substation.desc:
        element.set("desc", substation.desc)
    for transformer in substation.power_transformers:
        element.append(_transformer_element(transformer))
    for level in substation.voltage_levels:
        level_el = ET.SubElement(element, "VoltageLevel", {"name": level.name})
        if level.desc:
            level_el.set("desc", level.desc)
        voltage_el = ET.SubElement(
            level_el, "Voltage", {"unit": "V", "multiplier": "k"}
        )
        voltage_el.text = f"{level.voltage_kv:g}"
        for bay in level.bays:
            level_el.append(_bay_element(bay))
    return element


def _bay_element(bay: Bay) -> ET.Element:
    element = ET.Element("Bay", {"name": bay.name})
    if bay.desc:
        element.set("desc", bay.desc)
    for lnode in bay.lnodes:
        element.append(_lnode_element(lnode))
    for equipment in bay.equipment:
        element.append(_equipment_element(equipment))
    for node in bay.connectivity_nodes:
        node_el = ET.SubElement(element, "ConnectivityNode", {"name": node.name})
        if node.path_name:
            node_el.set("pathName", node.path_name)
    return element


def _equipment_element(equipment: ConductingEquipment) -> ET.Element:
    element = ET.Element(
        "ConductingEquipment", {"name": equipment.name, "type": equipment.type}
    )
    if equipment.desc:
        element.set("desc", equipment.desc)
    for lnode in equipment.lnodes:
        element.append(_lnode_element(lnode))
    for terminal in equipment.terminals:
        element.append(_terminal_element(terminal))
    _write_private_params(element, equipment.attributes)
    return element


def _terminal_element(terminal: Terminal) -> ET.Element:
    attrs = {"connectivityNode": terminal.connectivity_node}
    if terminal.name:
        attrs["name"] = terminal.name
    if terminal.c_node_name:
        attrs["cNodeName"] = terminal.c_node_name
    return ET.Element("Terminal", attrs)


def _lnode_element(lnode: LNode) -> ET.Element:
    attrs = {"lnClass": lnode.ln_class}
    if lnode.ied_name:
        attrs["iedName"] = lnode.ied_name
    if lnode.ld_inst:
        attrs["ldInst"] = lnode.ld_inst
    if lnode.ln_inst:
        attrs["lnInst"] = lnode.ln_inst
    if lnode.prefix:
        attrs["prefix"] = lnode.prefix
    return ET.Element("LNode", attrs)


def _transformer_element(transformer: PowerTransformer) -> ET.Element:
    element = ET.Element("PowerTransformer", {"name": transformer.name, "type": "PTR"})
    if transformer.desc:
        element.set("desc", transformer.desc)
    for winding in transformer.windings:
        winding_el = ET.SubElement(
            element,
            "TransformerWinding",
            {
                "name": winding.name,
                "type": "PTW",
                "ratedKV": f"{winding.rated_kv:g}",
                "ratedMVA": f"{winding.rated_mva:g}",
            },
        )
        for terminal in winding.terminals:
            winding_el.append(_terminal_element(terminal))
    _write_private_params(element, transformer.attributes)
    return element


def _write_private_params(parent: ET.Element, attributes: dict[str, str]) -> None:
    if not attributes:
        return
    private = ET.SubElement(parent, "Private", {"type": "SG-ML:Params"})
    for name, value in attributes.items():
        ET.SubElement(private, "Param", {"name": name, "value": value})


# ---------------------------------------------------------------------------
# IED
# ---------------------------------------------------------------------------


def _ied_element(ied: Ied) -> ET.Element:
    element = ET.Element(
        "IED",
        {
            "name": ied.name,
            "type": ied.type,
            "manufacturer": ied.manufacturer,
            "configVersion": ied.config_version,
        },
    )
    if ied.desc:
        element.set("desc", ied.desc)
    for access_point in ied.access_points:
        ap_el = ET.SubElement(element, "AccessPoint", {"name": access_point.name})
        if access_point.server_ldevices:
            server_el = ET.SubElement(ap_el, "Server")
            for ldevice in access_point.server_ldevices:
                ld_el = ET.SubElement(server_el, "LDevice", {"inst": ldevice.inst})
                if ldevice.desc:
                    ld_el.set("desc", ldevice.desc)
                for node in ldevice.logical_nodes:
                    tag = "LN0" if node.is_ln0 else "LN"
                    ln_el = ET.SubElement(
                        ld_el,
                        tag,
                        {"lnClass": node.ln_class, "inst": node.inst},
                    )
                    if node.prefix:
                        ln_el.set("prefix", node.prefix)
                    if node.ln_type:
                        ln_el.set("lnType", node.ln_type)
                    if node.desc:
                        ln_el.set("desc", node.desc)
                    for doi in node.dois:
                        ln_el.append(_doi_element(doi))
    return element


def _doi_element(data_object: DataObject, tag: str = "DOI") -> ET.Element:
    element = ET.Element(tag, {"name": data_object.name})
    for attribute in data_object.attributes:
        dai_el = ET.SubElement(element, "DAI", {"name": attribute.name})
        if attribute.fc:
            dai_el.set("fc", attribute.fc)
        if attribute.b_type:
            dai_el.set("bType", attribute.b_type)
        if attribute.value != "":
            val_el = ET.SubElement(dai_el, "Val")
            val_el.text = attribute.value
    for sub in data_object.sub_objects:
        element.append(_doi_element(sub, tag="SDI"))
    return element


# ---------------------------------------------------------------------------
# DataTypeTemplates and SED private
# ---------------------------------------------------------------------------


def _templates_element(document: SclDocument) -> ET.Element:
    element = ET.Element("DataTypeTemplates")
    for lnode_type in document.templates.lnode_types.values():
        lnt_el = ET.SubElement(
            element,
            "LNodeType",
            {"id": lnode_type.id, "lnClass": lnode_type.ln_class},
        )
        for do_name, do_type in lnode_type.dos.items():
            ET.SubElement(lnt_el, "DO", {"name": do_name, "type": do_type})
    for do_type in document.templates.do_types.values():
        dot_el = ET.SubElement(
            element, "DOType", {"id": do_type.id, "cdc": do_type.cdc}
        )
        for da_name, b_type in do_type.das.items():
            ET.SubElement(dot_el, "DA", {"name": da_name, "bType": b_type})
    for enum_type in document.templates.enum_types.values():
        enum_el = ET.SubElement(element, "EnumType", {"id": enum_type.id})
        for ordinal, symbol in enum_type.values.items():
            val_el = ET.SubElement(enum_el, "EnumVal", {"ord": str(ordinal)})
            val_el.text = symbol
    return element


def _sed_private_element(document: SclDocument) -> ET.Element:
    private = ET.Element("Private", {"type": "SG-ML:SED"})
    for tie in document.tie_lines:
        ET.SubElement(
            private,
            "TieLine",
            {
                "name": tie.name,
                "fromSubstation": tie.from_substation,
                "fromNode": tie.from_node,
                "toSubstation": tie.to_substation,
                "toNode": tie.to_node,
                "r": f"{tie.r_ohm:g}",
                "x": f"{tie.x_ohm:g}",
                "b": f"{tie.b_us:g}",
                "length": f"{tie.length_km:g}",
                "maxI": f"{tie.max_i_ka:g}",
            },
        )
    for wan in document.wan_links:
        ET.SubElement(
            private,
            "WanLink",
            {
                "fromSubNetwork": wan.from_subnetwork,
                "toSubNetwork": wan.to_subnetwork,
                "bandwidthMbps": f"{wan.bandwidth_mbps:g}",
                "latencyMs": f"{wan.latency_ms:g}",
            },
        )
    return private
