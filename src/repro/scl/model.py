"""Object model for IEC 61850 SCL documents.

The model covers the subset of IEC 61850-6 that the SG-ML toolchain consumes:
the Substation section (single-line diagram), the Communication section
(subnetworks and access-point addresses), the IED section (logical
devices / logical nodes) and DataTypeTemplates.  SED-specific content
(tie lines and WAN links between substations) is carried in dedicated
elements as permitted by the SCL ``Private`` extension mechanism.

Everything is a plain dataclass; identity is by name, matching SCL semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.scl.errors import SclValidationError


class SclFileKind(enum.Enum):
    """The four SCL file types of the paper's Table I."""

    SSD = "SSD"
    SCD = "SCD"
    ICD = "ICD"
    SED = "SED"

    @classmethod
    def from_suffix(cls, filename: str) -> Optional["SclFileKind"]:
        """Infer the kind from a filename extension, if recognisable."""
        lowered = filename.lower()
        for kind in cls:
            if lowered.endswith("." + kind.value.lower()):
                return kind
        if lowered.endswith(".cid") or lowered.endswith(".iid"):
            return cls.ICD
        return None


# ---------------------------------------------------------------------------
# Header
# ---------------------------------------------------------------------------


@dataclass
class Header:
    """SCL Header element."""

    id: str = ""
    version: str = "1"
    revision: str = "A"
    tool_id: str = "SG-ML"


# ---------------------------------------------------------------------------
# Substation section (single-line diagram)
# ---------------------------------------------------------------------------

#: Conducting-equipment type codes used by the toolchain (IEC 61850-6 table).
EQUIPMENT_TYPES = {
    "CBR": "circuit breaker",
    "DIS": "disconnector",
    "CTR": "current transformer",
    "VTR": "voltage transformer",
    "GEN": "generator",
    "BAT": "battery",
    "CAP": "capacitor bank",
    "REA": "reactor",
    "IFL": "infeeding line",
    "MOT": "motor / controllable load",
    "LIN": "power line segment",
    "SAR": "surge arrester",
}


@dataclass
class Terminal:
    """Connection of one equipment terminal to a connectivity node."""

    name: str = ""
    connectivity_node: str = ""  # full path, e.g. "S1/VL1/Bay1/CN1"
    c_node_name: str = ""  # short name of the node

    def __post_init__(self) -> None:
        if not self.c_node_name and self.connectivity_node:
            self.c_node_name = self.connectivity_node.rsplit("/", 1)[-1]


@dataclass
class ConnectivityNode:
    """A node of the single-line diagram (equipment meets here)."""

    name: str
    path_name: str = ""


@dataclass
class LNode:
    """Reference from a primary-equipment function to an IED logical node."""

    ied_name: str = ""
    ld_inst: str = ""
    ln_class: str = ""
    ln_inst: str = ""
    prefix: str = ""


@dataclass
class ConductingEquipment:
    """Primary equipment inside a bay (breaker, generator, line, ...)."""

    name: str
    type: str
    desc: str = ""
    terminals: list[Terminal] = field(default_factory=list)
    lnodes: list[LNode] = field(default_factory=list)
    #: SG-ML private attributes (ratings, load profile ids, etc.).
    attributes: dict[str, str] = field(default_factory=dict)


@dataclass
class Bay:
    """A bay groups equipment and connectivity nodes in a voltage level."""

    name: str
    desc: str = ""
    equipment: list[ConductingEquipment] = field(default_factory=list)
    connectivity_nodes: list[ConnectivityNode] = field(default_factory=list)
    lnodes: list[LNode] = field(default_factory=list)

    def equipment_by_type(self, type_code: str) -> list[ConductingEquipment]:
        return [e for e in self.equipment if e.type == type_code]

    def find_equipment(self, name: str) -> Optional[ConductingEquipment]:
        for item in self.equipment:
            if item.name == name:
                return item
        return None


@dataclass
class TransformerWinding:
    """One winding of a power transformer."""

    name: str
    terminals: list[Terminal] = field(default_factory=list)
    rated_kv: float = 0.0
    rated_mva: float = 0.0


@dataclass
class PowerTransformer:
    """Two-winding power transformer (substation level or voltage level)."""

    name: str
    desc: str = ""
    windings: list[TransformerWinding] = field(default_factory=list)
    attributes: dict[str, str] = field(default_factory=dict)


@dataclass
class VoltageLevel:
    """Voltage level containing bays; carries the nominal voltage."""

    name: str
    voltage_kv: float = 0.0
    desc: str = ""
    bays: list[Bay] = field(default_factory=list)

    def find_bay(self, name: str) -> Optional[Bay]:
        for bay in self.bays:
            if bay.name == name:
                return bay
        return None


@dataclass
class Substation:
    """Substation section root — the single-line diagram."""

    name: str
    desc: str = ""
    voltage_levels: list[VoltageLevel] = field(default_factory=list)
    power_transformers: list[PowerTransformer] = field(default_factory=list)

    def find_voltage_level(self, name: str) -> Optional[VoltageLevel]:
        for level in self.voltage_levels:
            if level.name == name:
                return level
        return None

    def iter_bays(self) -> Iterator[tuple[VoltageLevel, Bay]]:
        for level in self.voltage_levels:
            for bay in level.bays:
                yield level, bay

    def iter_equipment(
        self,
    ) -> Iterator[tuple[VoltageLevel, Bay, ConductingEquipment]]:
        for level, bay in self.iter_bays():
            for item in bay.equipment:
                yield level, bay, item

    def connectivity_node_paths(self) -> set[str]:
        paths: set[str] = set()
        for level, bay in self.iter_bays():
            for node in bay.connectivity_nodes:
                paths.add(
                    node.path_name
                    or f"{self.name}/{level.name}/{bay.name}/{node.name}"
                )
        return paths


# ---------------------------------------------------------------------------
# Communication section
# ---------------------------------------------------------------------------


@dataclass
class ConnectedAp:
    """An IED access point attached to a subnetwork, with its addresses."""

    ied_name: str
    ap_name: str = "AP1"
    #: P-type → value, e.g. {"IP": "10.0.1.11", "MAC-Address": "..."}
    address: dict[str, str] = field(default_factory=dict)

    @property
    def ip(self) -> str:
        return self.address.get("IP", "")

    @property
    def mac(self) -> str:
        return self.address.get("MAC-Address", "")

    @property
    def subnet_mask(self) -> str:
        return self.address.get("IP-SUBNET", "255.255.255.0")

    @property
    def gateway(self) -> str:
        return self.address.get("IP-GATEWAY", "")


@dataclass
class SubNetwork:
    """A subnetwork (station bus / process bus / WAN) with attached APs."""

    name: str
    type: str = "8-MMS"
    desc: str = ""
    connected_aps: list[ConnectedAp] = field(default_factory=list)
    #: SG-ML private attributes (switch fanout, link latency, ...).
    attributes: dict[str, str] = field(default_factory=dict)

    def find_ap(self, ied_name: str, ap_name: str = "") -> Optional[ConnectedAp]:
        for ap in self.connected_aps:
            if ap.ied_name == ied_name and (not ap_name or ap.ap_name == ap_name):
                return ap
        return None


@dataclass
class CommunicationSection:
    """Communication section root."""

    subnetworks: list[SubNetwork] = field(default_factory=list)

    def find_subnetwork(self, name: str) -> Optional[SubNetwork]:
        for subnet in self.subnetworks:
            if subnet.name == name:
                return subnet
        return None

    def iter_aps(self) -> Iterator[tuple[SubNetwork, ConnectedAp]]:
        for subnet in self.subnetworks:
            for ap in subnet.connected_aps:
                yield subnet, ap


# ---------------------------------------------------------------------------
# IED section
# ---------------------------------------------------------------------------


@dataclass
class DataAttribute:
    """DAI element — an instantiated data attribute with an initial value."""

    name: str
    value: str = ""
    fc: str = ""  # functional constraint (ST, MX, CO, SP, CF)
    b_type: str = ""  # basic type (BOOLEAN, FLOAT32, INT32, Enum, ...)


@dataclass
class DataObject:
    """DOI element — an instantiated data object (e.g. ``Pos``, ``Op``)."""

    name: str
    attributes: list[DataAttribute] = field(default_factory=list)
    sub_objects: list["DataObject"] = field(default_factory=list)

    def find_attribute(self, name: str) -> Optional[DataAttribute]:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None


@dataclass
class LogicalNode:
    """LN / LN0 element.

    ``ln_class`` carries the IEC 61850-7-4 class (PTOC, XCBR, MMXU, CSWI,
    CILO, ...) which drives which features the Virtual IED Builder enables —
    exactly the mechanism described in the paper's §III-B.
    """

    ln_class: str
    inst: str = "1"
    prefix: str = ""
    ln_type: str = ""
    desc: str = ""
    is_ln0: bool = False
    dois: list[DataObject] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Concatenated LN name, e.g. ``PTOC1`` or ``Q1XCBR1``."""
        return f"{self.prefix}{self.ln_class}{self.inst}"

    def find_doi(self, name: str) -> Optional[DataObject]:
        for doi in self.dois:
            if doi.name == name:
                return doi
        return None


@dataclass
class LDevice:
    """Logical device inside a server."""

    inst: str
    desc: str = ""
    logical_nodes: list[LogicalNode] = field(default_factory=list)

    @property
    def ln0(self) -> Optional[LogicalNode]:
        for node in self.logical_nodes:
            if node.is_ln0:
                return node
        return None

    def find_ln(
        self, ln_class: str, inst: str = "", prefix: str = ""
    ) -> Optional[LogicalNode]:
        for node in self.logical_nodes:
            if node.ln_class != ln_class:
                continue
            if inst and node.inst != inst:
                continue
            if prefix and node.prefix != prefix:
                continue
            return node
        return None

    def ln_classes(self) -> set[str]:
        return {node.ln_class for node in self.logical_nodes}


@dataclass
class AccessPoint:
    """IED access point; ``server_ldevices`` is empty for client-only APs."""

    name: str = "AP1"
    server_ldevices: list[LDevice] = field(default_factory=list)


@dataclass
class Ied:
    """IED section element."""

    name: str
    type: str = ""
    manufacturer: str = "SG-ML"
    config_version: str = "1.0"
    desc: str = ""
    access_points: list[AccessPoint] = field(default_factory=list)

    def iter_ldevices(self) -> Iterator[LDevice]:
        for ap in self.access_points:
            yield from ap.server_ldevices

    def iter_lns(self) -> Iterator[tuple[LDevice, LogicalNode]]:
        for ldevice in self.iter_ldevices():
            for node in ldevice.logical_nodes:
                yield ldevice, node

    def ln_classes(self) -> set[str]:
        """All LN classes in the IED — drives feature enablement."""
        return {node.ln_class for _, node in self.iter_lns()}

    def find_ldevice(self, inst: str) -> Optional[LDevice]:
        for ldevice in self.iter_ldevices():
            if ldevice.inst == inst:
                return ldevice
        return None


# ---------------------------------------------------------------------------
# DataTypeTemplates
# ---------------------------------------------------------------------------


@dataclass
class LNodeType:
    """LNodeType template: LN class plus its data-object names."""

    id: str
    ln_class: str
    dos: dict[str, str] = field(default_factory=dict)  # DO name → DOType id


@dataclass
class DoType:
    """DOType template: CDC plus attribute name → basic type."""

    id: str
    cdc: str = ""
    das: dict[str, str] = field(default_factory=dict)  # DA name → bType


@dataclass
class EnumType:
    """EnumType template: ordinal → symbolic name."""

    id: str
    values: dict[int, str] = field(default_factory=dict)


@dataclass
class DataTypeTemplates:
    lnode_types: dict[str, LNodeType] = field(default_factory=dict)
    do_types: dict[str, DoType] = field(default_factory=dict)
    enum_types: dict[str, EnumType] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# SED content (SG-ML usage: inter-substation ties)
# ---------------------------------------------------------------------------


@dataclass
class TieLine:
    """Electrical connection between two substations (SED content).

    ``from_node`` / ``to_node`` are connectivity-node paths
    (``Substation/VoltageLevel/Bay/Node``).  Impedances are in ohms, total
    for the tie.
    """

    name: str
    from_substation: str
    from_node: str
    to_substation: str
    to_node: str
    r_ohm: float = 0.5
    x_ohm: float = 2.0
    b_us: float = 0.0  # total line charging susceptance, microsiemens
    length_km: float = 10.0
    max_i_ka: float = 1.0


@dataclass
class WanLink:
    """Communication link between two substation subnetworks (SED)."""

    from_subnetwork: str
    to_subnetwork: str
    bandwidth_mbps: float = 100.0
    latency_ms: float = 5.0


# ---------------------------------------------------------------------------
# Document root
# ---------------------------------------------------------------------------


@dataclass
class SclDocument:
    """Root of a parsed SCL file (any of the four kinds)."""

    header: Header = field(default_factory=Header)
    substations: list[Substation] = field(default_factory=list)
    communication: Optional[CommunicationSection] = None
    ieds: list[Ied] = field(default_factory=list)
    templates: DataTypeTemplates = field(default_factory=DataTypeTemplates)
    tie_lines: list[TieLine] = field(default_factory=list)
    wan_links: list[WanLink] = field(default_factory=list)
    source_path: str = ""

    # ------------------------------------------------------------------
    def find_substation(self, name: str) -> Optional[Substation]:
        for substation in self.substations:
            if substation.name == name:
                return substation
        return None

    def find_ied(self, name: str) -> Optional[Ied]:
        for ied in self.ieds:
            if ied.name == name:
                return ied
        return None

    @property
    def kind(self) -> SclFileKind:
        """Infer the SCL file kind from document content (Table I)."""
        if self.tie_lines or self.wan_links:
            return SclFileKind.SED
        has_substation = bool(self.substations)
        has_ieds = bool(self.ieds)
        has_comm = self.communication is not None and bool(
            self.communication.subnetworks
        )
        if has_substation and has_ieds and has_comm:
            return SclFileKind.SCD
        if has_ieds and not has_substation:
            return SclFileKind.ICD
        return SclFileKind.SSD

    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Semantic checks; returns a list of problems (empty = valid)."""
        problems: list[str] = []
        problems.extend(self._validate_terminals())
        problems.extend(self._validate_communication())
        problems.extend(self._validate_ieds())
        problems.extend(self._validate_ties())
        return problems

    def validate_or_raise(self) -> None:
        problems = self.validate()
        if problems:
            raise SclValidationError(
                f"{len(problems)} problem(s): " + "; ".join(problems[:10])
            )

    def _validate_terminals(self) -> list[str]:
        problems = []
        for substation in self.substations:
            known = substation.connectivity_node_paths()
            for level, bay, item in substation.iter_equipment():
                for terminal in item.terminals:
                    if terminal.connectivity_node and (
                        terminal.connectivity_node not in known
                    ):
                        problems.append(
                            f"{substation.name}/{level.name}/{bay.name}/"
                            f"{item.name}: terminal references unknown node "
                            f"{terminal.connectivity_node!r}"
                        )
            for transformer in substation.power_transformers:
                for winding in transformer.windings:
                    for terminal in winding.terminals:
                        if terminal.connectivity_node and (
                            terminal.connectivity_node not in known
                        ):
                            problems.append(
                                f"{substation.name}/{transformer.name}/"
                                f"{winding.name}: terminal references unknown "
                                f"node {terminal.connectivity_node!r}"
                            )
        return problems

    def _validate_communication(self) -> list[str]:
        problems = []
        if self.communication is None:
            return problems
        ied_names = {ied.name for ied in self.ieds}
        seen_ips: dict[str, str] = {}
        seen_macs: dict[str, str] = {}
        for subnet, ap in self.communication.iter_aps():
            if self.ieds and ap.ied_name not in ied_names:
                problems.append(
                    f"subnetwork {subnet.name}: ConnectedAP references "
                    f"unknown IED {ap.ied_name!r}"
                )
            if ap.ip:
                owner = seen_ips.setdefault(ap.ip, ap.ied_name)
                if owner != ap.ied_name:
                    problems.append(
                        f"duplicate IP {ap.ip} on {owner!r} and {ap.ied_name!r}"
                    )
            if ap.mac:
                owner = seen_macs.setdefault(ap.mac, ap.ied_name)
                if owner != ap.ied_name:
                    problems.append(
                        f"duplicate MAC {ap.mac} on {owner!r} and {ap.ied_name!r}"
                    )
        return problems

    def _validate_ieds(self) -> list[str]:
        problems = []
        seen: set[str] = set()
        for ied in self.ieds:
            if ied.name in seen:
                problems.append(f"duplicate IED name {ied.name!r}")
            seen.add(ied.name)
            for _, node in ied.iter_lns():
                if node.ln_type and node.ln_type not in self.templates.lnode_types:
                    # Only a problem when templates are present at all.
                    if self.templates.lnode_types:
                        problems.append(
                            f"IED {ied.name}: LN {node.name} references "
                            f"missing LNodeType {node.ln_type!r}"
                        )
        return problems

    def _validate_ties(self) -> list[str]:
        problems = []
        names = {substation.name for substation in self.substations}
        for tie in self.tie_lines:
            for end in (tie.from_substation, tie.to_substation):
                if names and end not in names:
                    problems.append(
                        f"tie line {tie.name!r} references unknown "
                        f"substation {end!r}"
                    )
        return problems
