"""String-keyed compatibility shim over the typed point registry.

Reads are wait-free snapshots; command writes are recorded in arrival order
so the co-simulation loop can apply them to the power network exactly once
per tick (the paper's 100 ms granularity, §III-C).

Since the handle refactor, :class:`PointDatabase` stores nothing itself:
every key is interned into the owned :class:`~repro.pointdb.registry.
PointRegistry` and all values live in its typed slots.  The string API is
kept behaviorally identical for existing callers; hot-path components
resolve handles once and bypass string lookup entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from repro.pointdb.registry import (
    PointHandle,
    PointRegistry,
    PointType,
    parse_bool,
)


@dataclass(frozen=True)
class PointWrite:
    """One recorded write: who wrote what, when."""

    time_us: int
    key: str
    value: Any
    writer: str


class PointDatabase:
    """Key-value cache between the cyber side and the physical side."""

    def __init__(self, registry: Optional[PointRegistry] = None) -> None:
        self.registry = registry if registry is not None else PointRegistry()
        self._command_log: list[PointWrite] = []
        self._drained = 0
        self._subscribers: dict[str, list[Callable[[str, Any], None]]] = {}
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------------
    # Handle API (hot-path callers resolve once, then index)
    # ------------------------------------------------------------------
    def resolve(
        self, key: str, ptype: PointType = PointType.ANY
    ) -> PointHandle:
        """Intern ``key`` into the registry; stable across re-resolution."""
        return self.registry.resolve(key, ptype)

    def subscribe_handle(
        self,
        handle: PointHandle,
        callback: Callable[[PointHandle, Any], None],
    ) -> None:
        """Delta subscription: fires once per *changed* value per flush."""
        self.registry.subscribe(handle, callback)

    def unsubscribe_handle(
        self,
        handle: PointHandle,
        callback: Callable[[PointHandle, Any], None],
    ) -> bool:
        """Detach a delta subscription; True if it was registered."""
        return self.registry.unsubscribe(handle, callback)

    # ------------------------------------------------------------------
    # Measurement side (power simulator publishes, IEDs read)
    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        handle = self.registry.resolve(key)
        self.registry.write_now(handle, value)
        for callback in self._subscribers.get(key, []):
            callback(key, value)

    def get(self, key: str, default: Any = None) -> Any:
        self.read_count += 1
        handle = self.registry.handle_for(key)
        if handle is None:
            return default
        return self.registry.read(handle, default)

    def get_float(self, key: str, default: float = 0.0) -> float:
        value = self.get(key, default)
        try:
            return float(value)
        except (TypeError, ValueError):
            return default

    def get_bool(self, key: str, default: bool = False) -> bool:
        value = self.get(key, default)
        return parse_bool(value, default)

    def exists(self, key: str) -> bool:
        handle = self.registry.handle_for(key)
        return handle is not None and self.registry.present(handle)

    def keys(self, prefix: str = "") -> list[str]:
        return self.registry.keys(prefix)

    def snapshot(self, prefix: str = "") -> dict[str, Any]:
        return self.registry.snapshot(prefix)

    # ------------------------------------------------------------------
    # Command side (IEDs write, co-simulation loop drains)
    # ------------------------------------------------------------------
    def write_command(
        self, key: str, value: Any, writer: str = "", time_us: int = 0
    ) -> None:
        """Record a control command; also visible immediately via ``get``."""
        self.write_count += 1
        handle = self.registry.resolve(key)
        self.registry.write_now(handle, value)
        self._command_log.append(
            PointWrite(time_us=time_us, key=key, value=value, writer=writer)
        )
        for callback in self._subscribers.get(key, []):
            callback(key, value)

    def drain_commands(self) -> list[PointWrite]:
        """Commands recorded since the previous drain (arrival order)."""
        fresh = self._command_log[self._drained :]
        self._drained = len(self._command_log)
        return fresh

    @property
    def command_history(self) -> list[PointWrite]:
        """Full audit log of every command ever written (forensics)."""
        return list(self._command_log)

    # ------------------------------------------------------------------
    def subscribe(self, key: str, callback: Callable[[str, Any], None]) -> None:
        """Invoke ``callback(key, value)`` on every update of ``key``.

        Legacy semantics: fires on each explicit :meth:`set` /
        :meth:`write_command`, changed or not.  Batch publications through
        the registry do not pass through here — use
        :meth:`subscribe_handle` for delta notifications.
        """
        self._subscribers.setdefault(key, []).append(callback)

    def __len__(self) -> int:
        return len(self.registry)

    def __iter__(self) -> Iterator[str]:
        return iter(self.registry.keys())
