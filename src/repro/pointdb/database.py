"""In-process key-value store with a command-drain queue.

Reads are wait-free snapshots; command writes are recorded in arrival order
so the co-simulation loop can apply them to the power network exactly once
per tick (the paper's 100 ms granularity, §III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class PointWrite:
    """One recorded write: who wrote what, when."""

    time_us: int
    key: str
    value: Any
    writer: str


class PointDatabase:
    """Key-value cache between the cyber side and the physical side."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self._command_log: list[PointWrite] = []
        self._drained = 0
        self._subscribers: dict[str, list[Callable[[str, Any], None]]] = {}
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------------
    # Measurement side (power simulator publishes, IEDs read)
    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self._data[key] = value
        for callback in self._subscribers.get(key, []):
            callback(key, value)

    def get(self, key: str, default: Any = None) -> Any:
        self.read_count += 1
        return self._data.get(key, default)

    def get_float(self, key: str, default: float = 0.0) -> float:
        value = self.get(key, default)
        try:
            return float(value)
        except (TypeError, ValueError):
            return default

    def get_bool(self, key: str, default: bool = False) -> bool:
        value = self.get(key, default)
        return bool(value)

    def exists(self, key: str) -> bool:
        return key in self._data

    def keys(self, prefix: str = "") -> list[str]:
        if not prefix:
            return sorted(self._data)
        return sorted(key for key in self._data if key.startswith(prefix))

    def snapshot(self, prefix: str = "") -> dict[str, Any]:
        return {key: self._data[key] for key in self.keys(prefix)}

    # ------------------------------------------------------------------
    # Command side (IEDs write, co-simulation loop drains)
    # ------------------------------------------------------------------
    def write_command(
        self, key: str, value: Any, writer: str = "", time_us: int = 0
    ) -> None:
        """Record a control command; also visible immediately via ``get``."""
        self.write_count += 1
        self._data[key] = value
        self._command_log.append(
            PointWrite(time_us=time_us, key=key, value=value, writer=writer)
        )
        for callback in self._subscribers.get(key, []):
            callback(key, value)

    def drain_commands(self) -> list[PointWrite]:
        """Commands recorded since the previous drain (arrival order)."""
        fresh = self._command_log[self._drained :]
        self._drained = len(self._command_log)
        return fresh

    @property
    def command_history(self) -> list[PointWrite]:
        """Full audit log of every command ever written (forensics)."""
        return list(self._command_log)

    # ------------------------------------------------------------------
    def subscribe(self, key: str, callback: Callable[[str, Any], None]) -> None:
        """Invoke ``callback(key, value)`` on every update of ``key``."""
        self._subscribers.setdefault(key, []).append(callback)

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._data))
