"""Point database — the cyber↔physical coupling cache.

The paper's cyber range connects virtual IEDs to the power-system simulator
"through an open-sourced MySQL database.  This works as a 'cache' storing a
set of key-value pairs, for reading power grid measurements (voltages,
power flow, etc.) and executing control (e.g., opening/closing circuit
breakers)."  :class:`PointDatabase` reproduces that contract in-process.

Key naming convention (produced by the SSD parser and consumed via the
IED Config XML mapping):

* ``meas/<bus>/vm_pu``, ``meas/<bus>/va_deg``        — bus voltages
* ``meas/<line>/p_mw|q_mvar|i_ka|loading``           — branch flows
* ``status/<breaker>/closed``                        — breaker positions
* ``cmd/<breaker>/close``                            — breaker commands
  (written by IEDs, drained by the co-simulation loop each tick)

Data-plane architecture (handle refactor)
-----------------------------------------

The store is layered:

* :class:`~repro.pointdb.registry.PointRegistry` — the data plane.  Every
  key is interned **once** into an integer-indexed slot with a declared
  :class:`~repro.pointdb.registry.PointType` (float/bool/int/any), a
  per-point dirty bit and a monotonic generation counter.  Producers and
  consumers resolve :class:`~repro.pointdb.registry.PointHandle` objects at
  range compile time and then touch plain list slots on the hot path — no
  f-string key formatting, no string hashing per tick.

* **Delta publication** — the power-flow coupling writes each tick's
  snapshot through handles (:meth:`PointRegistry.write` suppresses
  unchanged values entirely) and performs **one** dirty-set
  :meth:`PointRegistry.flush` per tick.  Handle subscribers therefore fire
  exactly once per changed value per tick; a steady-state grid generates
  ~zero data-plane events, which is what lets idle substations cost ~zero
  scan work.

* **Pull-side skipping** — consumers that sync on their own schedule (the
  IED scan cycle) compare :meth:`PointRegistry.generation` against a
  remembered value instead of subscribing, skipping unchanged points.

* :class:`PointDatabase` — the **compatibility shim**.  It keeps the exact
  string API the rest of the codebase (and the paper's MySQL contract)
  expects — ``set``/``get``/``keys``/``snapshot``/``subscribe`` plus the
  command-drain queue — while storing everything in the registry.  Legacy
  per-key ``subscribe`` callbacks keep their fire-on-every-write
  semantics; the new ``subscribe_handle`` path is strictly change-driven.
"""

from repro.pointdb.database import PointDatabase, PointWrite
from repro.pointdb.registry import (
    PointHandle,
    PointRegistry,
    PointType,
    parse_bool,
)

__all__ = [
    "PointDatabase",
    "PointHandle",
    "PointRegistry",
    "PointType",
    "PointWrite",
    "parse_bool",
]
