"""Point database — the cyber↔physical coupling cache.

The paper's cyber range connects virtual IEDs to the power-system simulator
"through an open-sourced MySQL database.  This works as a 'cache' storing a
set of key-value pairs, for reading power grid measurements (voltages,
power flow, etc.) and executing control (e.g., opening/closing circuit
breakers)."  :class:`PointDatabase` reproduces that contract in-process.

Key naming convention (produced by the SSD parser and consumed via the
IED Config XML mapping):

* ``meas/<bus>/vm_pu``, ``meas/<bus>/va_deg``        — bus voltages
* ``meas/<line>/p_mw|q_mvar|i_ka|loading``           — branch flows
* ``status/<breaker>/closed``                        — breaker positions
* ``cmd/<breaker>/close``                            — breaker commands
  (written by IEDs, drained by the co-simulation loop each tick)
"""

from repro.pointdb.database import PointDatabase, PointWrite

__all__ = ["PointDatabase", "PointWrite"]
