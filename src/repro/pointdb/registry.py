"""Typed point-handle registry: the delta-publication core of the data plane.

The registry interns every point key exactly once into an integer-indexed
slot.  Producers (the power-flow coupling) and consumers (IEDs, PLCs, the
HMI) resolve :class:`PointHandle` objects up front — at range compile time —
and then read/write through plain list indexing on the hot path: no string
formatting, no hashing of long hierarchical keys per tick.

Writes are *delta* writes: a value equal to the stored one is suppressed
(no generation bump, no dirty bit, no subscriber callback).  Batch producers
call :meth:`PointRegistry.write` many times and :meth:`PointRegistry.flush`
once per tick; the flush visits each dirty point exactly once, in slot
order, so subscribers fire once per changed value per tick regardless of
how many times the point was written inside the batch.

Generation counters let pull-style consumers (the IED scan cycle) skip
points that have not changed since their last sync without subscribing at
all: compare :meth:`generation` against a remembered value.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional


class PointType(enum.Enum):
    """Declared slot type of a registered point."""

    ANY = "any"
    FLOAT = "float"
    BOOL = "bool"
    INT = "int"


#: Strings that parse as an explicit boolean, lower-cased.
_FALSE_STRINGS = frozenset({"", "0", "false", "off", "no", "f", "n"})
_TRUE_STRINGS = frozenset({"1", "true", "on", "yes", "t", "y"})


def parse_bool(value: Any, default: bool = False) -> bool:
    """Boolean coercion that understands string truthiness.

    ``bool("false")`` is ``True`` in python; measurement sources that
    deliver strings (XML configs, spoofed writes) must not flip breakers
    because of that.  Unrecognised strings fall back to numeric parsing,
    then to ``default``.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        text = value.strip().lower()
        if text in _FALSE_STRINGS:
            return False
        if text in _TRUE_STRINGS:
            return True
        try:
            return float(text) != 0.0
        except ValueError:
            return default
    if value is None:
        return default
    return bool(value)


@dataclass(frozen=True)
class PointHandle:
    """A resolved point: stable integer slot + the interned key.

    Handles are value objects — re-resolving the same key returns an equal
    handle with the same ``index`` for the lifetime of the registry.
    """

    index: int
    key: str
    ptype: PointType = PointType.ANY

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PointHandle({self.index}, {self.key!r}, {self.ptype.value})"


def _values_equal(old: Any, new: Any) -> bool:
    """Equality with NaN == NaN (a NaN measurement is not 'fresh' forever)."""
    if old is new:
        return True
    if isinstance(old, float) and isinstance(new, float):
        if math.isnan(old) and math.isnan(new):
            return True
    if isinstance(old, bool) is not isinstance(new, bool):
        return False
    try:
        return bool(old == new)
    except Exception:  # exotic value types never compare equal
        return False


class PointRegistry:
    """Interned, typed, dirty-tracked point store."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self._keys: list[str] = []
        self._types: list[PointType] = []
        self._values: list[Any] = []
        self._present: list[bool] = []
        self._generations: list[int] = []
        self._dirty: list[bool] = []
        self._dirty_indices: list[int] = []
        self._subscribers: dict[int, list[Callable[[PointHandle, Any], None]]] = {}
        #: Wildcard subscribers: notified for *every* changed point,
        #: including points interned after they subscribed.  Used by the
        #: service event broker; empty (one falsy check per notify) in
        #: batch runs.
        self._global_subscribers: list[Callable[[PointHandle, Any], None]] = []
        self._handles: list[PointHandle] = []
        self._present_count = 0
        #: Write-path accounting (benchmarks report these).
        self.writes = 0
        self.changed_writes = 0
        self.suppressed_writes = 0
        self.flushes = 0
        self.notifications = 0

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def resolve(
        self, key: str, ptype: PointType = PointType.ANY
    ) -> PointHandle:
        """Intern ``key`` (idempotent) and return its handle.

        The first caller to name a non-ANY type fixes the slot type; later
        resolutions get the established handle back regardless of the type
        they ask for, so interning is stable across re-resolution.
        """
        slot = self._index.get(key)
        if slot is None:
            slot = len(self._keys)
            self._index[key] = slot
            self._keys.append(key)
            self._types.append(ptype)
            self._values.append(None)
            self._present.append(False)
            self._generations.append(0)
            self._dirty.append(False)
            self._handles.append(PointHandle(slot, key, ptype))
            return self._handles[slot]
        if ptype is not PointType.ANY and self._types[slot] is PointType.ANY:
            self._types[slot] = ptype
            self._handles[slot] = PointHandle(slot, key, ptype)
        return self._handles[slot]

    def handle_for(self, key: str) -> Optional[PointHandle]:
        """Return the handle for an already-interned key, else ``None``."""
        slot = self._index.get(key)
        return None if slot is None else self._handles[slot]

    # ------------------------------------------------------------------
    # Writing (batch + immediate)
    # ------------------------------------------------------------------
    def _coerce(self, slot: int, value: Any) -> Any:
        ptype = self._types[slot]
        if ptype is PointType.ANY:
            return value
        try:
            if ptype is PointType.FLOAT:
                return float(value)
            if ptype is PointType.BOOL:
                return parse_bool(value)
            return int(value)
        except (TypeError, ValueError):
            return value  # keep the raw value rather than lose the write

    def _store(self, slot: int, value: Any) -> bool:
        """Shared write core: coerce, suppress unchanged, bump generation."""
        self.writes += 1
        value = self._coerce(slot, value)
        if self._present[slot] and _values_equal(self._values[slot], value):
            self.suppressed_writes += 1
            return False
        if not self._present[slot]:
            self._present[slot] = True
            self._present_count += 1
        self._values[slot] = value
        self._generations[slot] += 1
        self.changed_writes += 1
        return True

    def write(self, handle: PointHandle, value: Any) -> bool:
        """Store ``value``; returns True when it differs from the slot.

        Changed slots are marked dirty for the next :meth:`flush`;
        unchanged writes are suppressed entirely.
        """
        slot = handle.index
        if not self._store(slot, value):
            return False
        if not self._dirty[slot]:
            self._dirty[slot] = True
            self._dirty_indices.append(slot)
        return True

    def write_now(self, handle: PointHandle, value: Any) -> bool:
        """Write + immediate single-point notification (non-batch path).

        Does not touch the dirty set: the change is delivered here, so a
        later :meth:`flush` has nothing more to say about this point.
        """
        slot = handle.index
        if not self._store(slot, value):
            return False
        self._dirty[slot] = False  # a batched write before this is superseded
        self._notify(slot)
        return True

    def flush(self) -> int:
        """Notify subscribers of every dirty point exactly once.

        Returns the number of points flushed.  Points written again during
        the flush (by a subscriber) land in the next batch.
        """
        if not self._dirty_indices:
            return 0
        batch = self._dirty_indices
        self._dirty_indices = []
        flushed = 0
        for slot in batch:
            if not self._dirty[slot]:
                continue  # already delivered via write_now
            self._dirty[slot] = False
            flushed += 1
            self._notify(slot)
        self.flushes += 1
        return flushed

    def _notify(self, slot: int) -> None:
        callbacks = self._subscribers.get(slot)
        if not callbacks and not self._global_subscribers:
            return
        handle = self._handles[slot]
        value = self._values[slot]
        # Copy: a callback may unsubscribe itself (one-shot scenario
        # triggers) without corrupting this delivery round.
        for callback in tuple(callbacks or ()):
            self.notifications += 1
            callback(handle, value)
        for callback in tuple(self._global_subscribers):
            self.notifications += 1
            callback(handle, value)

    @property
    def pending_dirty(self) -> int:
        """Dirty points awaiting the next flush."""
        return sum(1 for slot in self._dirty_indices if self._dirty[slot])

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self, handle: PointHandle, default: Any = None) -> Any:
        slot = handle.index
        return self._values[slot] if self._present[slot] else default

    def get_float(self, handle: PointHandle, default: float = 0.0) -> float:
        value = self.read(handle, default)
        try:
            return float(value)
        except (TypeError, ValueError):
            return default

    def get_bool(self, handle: PointHandle, default: bool = False) -> bool:
        value = self.read(handle, default)
        return parse_bool(value, default)

    def present(self, handle: PointHandle) -> bool:
        return self._present[handle.index]

    def generation(self, handle: PointHandle) -> int:
        """Monotonic per-point change counter (0 = never written)."""
        return self._generations[handle.index]

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(
        self,
        handle: PointHandle,
        callback: Callable[[PointHandle, Any], None],
    ) -> None:
        """Invoke ``callback(handle, value)`` when the point *changes*."""
        self._subscribers.setdefault(handle.index, []).append(callback)

    def unsubscribe(
        self,
        handle: PointHandle,
        callback: Callable[[PointHandle, Any], None],
    ) -> bool:
        """Remove one registration of ``callback``; True if it was found.

        Scenario triggers subscribe at arm time and must detach after
        firing so a completed phase costs nothing on later flushes.
        """
        callbacks = self._subscribers.get(handle.index)
        if not callbacks:
            return False
        try:
            callbacks.remove(callback)
        except ValueError:
            return False
        if not callbacks:
            del self._subscribers[handle.index]
        return True

    def subscribe_all(
        self, callback: Callable[[PointHandle, Any], None]
    ) -> None:
        """Invoke ``callback(handle, value)`` for *every* changed point.

        Unlike per-handle subscription this also covers points interned
        after the call, which is what a live event stream needs: a
        scenario armed mid-session may intern new keys and subscribers
        must still see them change.
        """
        self._global_subscribers.append(callback)

    def unsubscribe_all(
        self, callback: Callable[[PointHandle, Any], None]
    ) -> bool:
        """Remove one wildcard registration; ``True`` if it was found."""
        try:
            self._global_subscribers.remove(callback)
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------
    # Introspection / string-keyed views (compat layer uses these)
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Interned key count (present or not)."""
        return len(self._keys)

    @property
    def present_count(self) -> int:
        return self._present_count

    def keys(self, prefix: str = "") -> list[str]:
        if not prefix:
            return sorted(
                key
                for key, slot in self._index.items()
                if self._present[slot]
            )
        return sorted(
            key
            for key, slot in self._index.items()
            if self._present[slot] and key.startswith(prefix)
        )

    def snapshot(self, prefix: str = "") -> dict[str, Any]:
        return {key: self._values[self._index[key]] for key in self.keys(prefix)}

    def __len__(self) -> int:
        return self._present_count

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def stats(self) -> dict[str, int]:
        """Write-path accounting snapshot (benchmarks, reports)."""
        return {
            "points": self.size,
            "present": self._present_count,
            "writes": self.writes,
            "changed_writes": self.changed_writes,
            "suppressed_writes": self.suppressed_writes,
            "flushes": self.flushes,
            "notifications": self.notifications,
        }
