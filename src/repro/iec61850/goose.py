"""GOOSE (Generic Object Oriented Substation Event) publish/subscribe.

IEDs exchange device status (breaker positions, trip signals, interlock
states) via GOOSE multicast on the station bus.  The implementation follows
the IEC 61850-8-1 state machine:

* a state change increments ``stNum``, resets ``sqNum`` to 0 and triggers a
  retransmission burst with exponentially increasing intervals,
* steady state repeats the last message at the heartbeat interval
  (``GOOSE_MAX_INTERVAL_US``) with incrementing ``sqNum``,
* subscribers detect missing publishers by time-allowed-to-live expiry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.iec61850.codec import (
    CodecError,
    decode_value,
    encode_value,
    memoize_by_identity,
)
from repro.kernel import MS, SECOND, Simulator
from repro.netem.frames import ETHERTYPE_GOOSE, EthernetFrame
from repro.netem.host import Host

#: First retransmission delay after a state change.
GOOSE_MIN_INTERVAL_US = 2 * MS
#: Steady-state heartbeat interval.
GOOSE_MAX_INTERVAL_US = 1 * SECOND

#: Default GOOSE destination group (IEC 61850 appendix B range).
DEFAULT_GOOSE_MAC = "01:0c:cd:01:00:01"


@dataclass
class GooseMessage:
    """Decoded GOOSE PDU."""

    gocb_ref: str
    dat_set: str
    go_id: str
    st_num: int
    sq_num: int
    time_allowed_to_live_ms: int
    test: bool
    conf_rev: int
    timestamp_us: int
    all_data: list

    def to_bytes(self) -> bytes:
        return encode_value(
            {
                "gocbRef": self.gocb_ref,
                "datSet": self.dat_set,
                "goID": self.go_id,
                "stNum": self.st_num,
                "sqNum": self.sq_num,
                "timeAllowedtoLive": self.time_allowed_to_live_ms,
                "test": self.test,
                "confRev": self.conf_rev,
                "t": self.timestamp_us,
                "allData": self.all_data,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "GooseMessage":
        decoded = decode_value(data)
        if not isinstance(decoded, dict):
            raise CodecError("GOOSE payload is not a map")
        return cls(
            gocb_ref=decoded.get("gocbRef", ""),
            dat_set=decoded.get("datSet", ""),
            go_id=decoded.get("goID", ""),
            st_num=int(decoded.get("stNum", 0)),
            sq_num=int(decoded.get("sqNum", 0)),
            time_allowed_to_live_ms=int(decoded.get("timeAllowedtoLive", 0)),
            test=bool(decoded.get("test", False)),
            conf_rev=int(decoded.get("confRev", 1)),
            timestamp_us=int(decoded.get("t", 0)),
            all_data=list(decoded.get("allData", [])),
        )


#: ``GooseMessage.from_bytes`` with per-frame receiver de-duplication: a
#: delivered frame reaches every subscriber with the same payload object,
#: so the decode runs once per frame (see :func:`codec.memoize_by_identity`).
#: Batch-sized (8 slots): the cut-through plane delivers same-instant
#: frames in one event, interleaving subscribers across payloads.
decode_goose = memoize_by_identity(GooseMessage.from_bytes, slots=8)


class GoosePublisher:
    """Publishes a dataset with the standard retransmission scheme."""

    def __init__(
        self,
        host: Host,
        gocb_ref: str,
        dat_set: str,
        go_id: str = "",
        dst_mac: str = DEFAULT_GOOSE_MAC,
        conf_rev: int = 1,
    ) -> None:
        self.host = host
        self.gocb_ref = gocb_ref
        self.dat_set = dat_set
        self.go_id = go_id or gocb_ref
        self.dst_mac = dst_mac
        self.conf_rev = conf_rev
        self.st_num = 0
        self.sq_num = 0
        self._values: list = []
        self._retransmit_event = None
        self._interval_us = GOOSE_MAX_INTERVAL_US
        self.tx_count = 0
        self.started = False

    @property
    def simulator(self) -> Simulator:
        return self.host.simulator

    def start(self, initial_values: list) -> None:
        """Publish the initial state and begin heartbeating."""
        if self.started:
            return
        self.started = True
        self._values = list(initial_values)
        self.st_num = 1
        self.sq_num = 0
        self._interval_us = GOOSE_MIN_INTERVAL_US
        self._publish_now()

    def stop(self) -> None:
        self.started = False
        if self._retransmit_event is not None:
            self._retransmit_event.cancel()
            self._retransmit_event = None

    def update(self, values: list) -> None:
        """Publish a state change (new stNum, burst retransmission)."""
        if not self.started:
            self.start(values)
            return
        if list(values) == self._values:
            return  # no change — steady-state heartbeat continues
        self._values = list(values)
        self.st_num += 1
        self.sq_num = 0
        self._interval_us = GOOSE_MIN_INTERVAL_US
        if self._retransmit_event is not None:
            self._retransmit_event.cancel()
        self._publish_now()

    # ------------------------------------------------------------------
    def _publish_now(self) -> None:
        message = GooseMessage(
            gocb_ref=self.gocb_ref,
            dat_set=self.dat_set,
            go_id=self.go_id,
            st_num=self.st_num,
            sq_num=self.sq_num,
            time_allowed_to_live_ms=max(
                2 * self._interval_us // MS, 10
            ),
            test=False,
            conf_rev=self.conf_rev,
            timestamp_us=self.simulator.now,
            all_data=self._values,
        )
        # The appid tag (the control block reference, standing in for the
        # APPID of a real GOOSE header) lets subscription-aware switches
        # prune this stream to its subscribers on the shared group MAC.
        self.host.send_ethernet(
            self.dst_mac,
            ETHERTYPE_GOOSE,
            message.to_bytes(),
            appid=self.gocb_ref,
        )
        self.tx_count += 1
        self.sq_num += 1
        # Exponential backoff towards the heartbeat interval.
        self._retransmit_event = self.simulator.schedule(
            self._interval_us, self._on_timer, label=f"goose:{self.go_id}"
        )
        self._interval_us = min(self._interval_us * 2, GOOSE_MAX_INTERVAL_US)

    def _on_timer(self) -> None:
        if self.started:
            self._publish_now()


class GooseSubscriber:
    """Subscribes to one GOOSE control block reference."""

    def __init__(
        self,
        host: Host,
        gocb_ref: str,
        on_update: Callable[[GooseMessage], None],
        stale_timeout_us: int = 3 * SECOND,
        on_stale: Optional[Callable[[], None]] = None,
        dst_mac: str = DEFAULT_GOOSE_MAC,
    ) -> None:
        self.host = host
        self.gocb_ref = gocb_ref
        self.on_update = on_update
        self.on_stale = on_stale
        self.stale_timeout_us = stale_timeout_us
        self.last_message: Optional[GooseMessage] = None
        self.last_seen_us = -1
        self.rx_count = 0
        self.state_changes = 0
        self._stale_event = None
        host.register_ethertype_handler(ETHERTYPE_GOOSE, self._on_frame)
        # GMRP-analog join: tell the network's multicast pruner this host
        # subscribes to the control block's stream on the group MAC.
        host.join_l2_group(dst_mac, gocb_ref)

    @property
    def values(self) -> list:
        """Most recently received dataset (empty before first message)."""
        return self.last_message.all_data if self.last_message else []

    @property
    def healthy(self) -> bool:
        """True while messages arrive within the stale timeout."""
        if self.last_seen_us < 0:
            return False
        return self.host.simulator.now - self.last_seen_us <= self.stale_timeout_us

    def _on_frame(self, frame: EthernetFrame) -> None:
        if not isinstance(frame.payload, bytes):
            return
        try:
            message = decode_goose(frame.payload)
        except CodecError:
            return
        if message.gocb_ref != self.gocb_ref:
            return
        self.rx_count += 1
        self.last_seen_us = self.host.simulator.now
        is_change = (
            self.last_message is None or message.st_num != self.last_message.st_num
        )
        self.last_message = message
        self._arm_stale_timer()
        if is_change:
            self.state_changes += 1
            self.on_update(message)

    def _arm_stale_timer(self) -> None:
        if self._stale_event is not None:
            self._stale_event.cancel()
        if self.on_stale is None:
            return
        self._stale_event = self.host.simulator.schedule(
            self.stale_timeout_us + 1,
            self._check_stale,
            label=f"goose-stale:{self.gocb_ref}",
        )

    def _check_stale(self) -> None:
        self._stale_event = None
        if self.on_stale is None:
            return
        if self.healthy:
            # A message arrived meanwhile without re-arming (races are
            # possible when handlers run in the same tick): re-check later.
            remaining = self.stale_timeout_us - (
                self.host.simulator.now - self.last_seen_us
            )
            self._stale_event = self.host.simulator.schedule(
                max(remaining, 1) + 1, self._check_stale
            )
            return
        self.on_stale()
