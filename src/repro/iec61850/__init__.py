"""IEC 61850 communication stack (libiec61850 substitute).

Implements the four protocols the paper's virtual IEDs speak (§III-B):

* **MMS** (:mod:`repro.iec61850.mms`) — client/server over TCP port 102;
  used by SCADA→IED/PLC and PLC→IED for interrogation and control.
* **GOOSE** (:mod:`repro.iec61850.goose`) — publisher/subscriber over L2
  multicast (ethertype ``0x88B8``) with the standard stNum/sqNum
  retransmission scheme; used IED↔IED for status exchange.
* **R-GOOSE / R-SV** (:mod:`repro.iec61850.rgoose`) — the routable variants
  over UDP/IP multicast (IEC 61850-90-5); used for inter-substation
  protection (PDIF/CILO).
* **SV** (:mod:`repro.iec61850.sv`) — sampled measurement streams.

Wire format: a structurally faithful BER-style TLV encoding
(:mod:`repro.iec61850.codec`).  Messages really are byte strings on the
virtual wire — an attacker tap can parse and rewrite them, which the MITM
case study does.
"""

from repro.iec61850.codec import CodecError, decode_value, encode_value
from repro.iec61850.goose import (
    GOOSE_MAX_INTERVAL_US,
    GOOSE_MIN_INTERVAL_US,
    GooseMessage,
    GoosePublisher,
    GooseSubscriber,
)
from repro.iec61850.mms import (
    MMS_PORT,
    MmsClient,
    MmsDataProvider,
    MmsError,
    MmsServer,
    MmsValue,
)
from repro.iec61850.rgoose import (
    RGOOSE_PORT,
    RGoosePublisher,
    RGooseSubscriber,
    RSvPublisher,
    RSvSubscriber,
)
from repro.iec61850.sv import SvMessage, SvPublisher, SvSubscriber

__all__ = [
    "CodecError",
    "GOOSE_MAX_INTERVAL_US",
    "GOOSE_MIN_INTERVAL_US",
    "GooseMessage",
    "GoosePublisher",
    "GooseSubscriber",
    "MMS_PORT",
    "MmsClient",
    "MmsDataProvider",
    "MmsError",
    "MmsServer",
    "MmsValue",
    "RGOOSE_PORT",
    "RGoosePublisher",
    "RGooseSubscriber",
    "RSvPublisher",
    "RSvSubscriber",
    "SvMessage",
    "SvPublisher",
    "SvSubscriber",
    "decode_value",
    "encode_value",
]
