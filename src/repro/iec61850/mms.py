"""MMS (Manufacturing Message Specification) client and server.

The paper's virtual IEDs expose their IEC 61850 data model over MMS
(TCP port 102); SCADA and PLCs interrogate and control them through it.
Implemented services (the subset the cyber range exercises):

* ``initiate``      — association setup after TCP connect,
* ``identify``      — vendor/model/revision,
* ``getNameList``   — browse logical devices / named variables,
* ``read``          — read one or more object references,
* ``write``         — write an object reference (includes controls: writing
  to a controllable object's ``Oper.ctlVal`` triggers the IED's operate
  path, which is how false-command-injection attacks work),
* ``infoReport``    — unsolicited server→client value reports.

Framing: 4-byte big-endian length prefix, then one TLV map per message —
a simplification of RFC 1006/ISO COTP framing that preserves the
stream-of-messages behaviour on top of TCP.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Optional, Protocol

from repro.iec61850.codec import CodecError, decode_value, encode_value
from repro.netem.host import Host
from repro.netem.tcp import TcpConnection

MMS_PORT = 102

MmsValue = Any
"""An MMS value: ``bool | int | float | str | bytes | list | None``."""


class MmsError(Exception):
    """Service-level failure (unknown reference, access denied, ...)."""


class MmsDataProvider(Protocol):
    """What an MMS server serves.  Virtual IEDs and PLCs implement this."""

    def mms_identify(self) -> dict:  # pragma: no cover - interface
        """Vendor / model / revision information."""
        ...

    def mms_get_name_list(self, object_class: str, domain: str) -> list[str]:
        """Browse: domain names, or variable names within a domain."""
        ...  # pragma: no cover - interface

    def mms_read(self, reference: str) -> MmsValue:  # pragma: no cover
        """Read an object reference; raises :class:`MmsError` if unknown."""
        ...

    def mms_write(self, reference: str, value: MmsValue) -> None:
        """Write an object reference; raises :class:`MmsError` on reject."""
        ...  # pragma: no cover - interface


class _Framer:
    """Splits a TCP byte stream into length-prefixed messages."""

    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer += data
        messages = []
        while len(self._buffer) >= 4:
            (length,) = struct.unpack(">I", self._buffer[:4])
            if len(self._buffer) < 4 + length:
                break
            messages.append(self._buffer[4 : 4 + length])
            self._buffer = self._buffer[4 + length :]
        return messages


def _frame(message: dict) -> bytes:
    body = encode_value(message)
    return struct.pack(">I", len(body)) + body


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


class MmsServer:
    """Serves a :class:`MmsDataProvider` over the host's TCP stack."""

    def __init__(
        self, host: Host, provider: MmsDataProvider, port: int = MMS_PORT
    ) -> None:
        self.host = host
        self.provider = provider
        self.port = port
        self._connections: list[TcpConnection] = []
        self._framers: dict[int, _Framer] = {}
        self._report_subscribers: list[TcpConnection] = []
        self.request_count = 0
        self.started = False

    def start(self) -> None:
        if self.started:
            return
        self.host.tcp.listen(self.port, self._on_accept)
        self.started = True

    @property
    def connection_count(self) -> int:
        return len(self._connections)

    def _on_accept(self, connection: TcpConnection) -> None:
        self._connections.append(connection)
        framer = _Framer()
        self._framers[id(connection)] = framer
        connection.on_data = lambda data: self._on_data(connection, framer, data)
        connection.on_close = lambda: self._on_close(connection)

    def _on_close(self, connection: TcpConnection) -> None:
        if connection in self._connections:
            self._connections.remove(connection)
        if connection in self._report_subscribers:
            self._report_subscribers.remove(connection)
        self._framers.pop(id(connection), None)

    def _on_data(
        self, connection: TcpConnection, framer: _Framer, data: bytes
    ) -> None:
        for raw in framer.feed(data):
            try:
                request = decode_value(raw)
            except CodecError:
                continue  # garbage on the wire (e.g. fuzzing) is ignored
            if isinstance(request, dict):
                self._serve(connection, request)

    def _serve(self, connection: TcpConnection, request: dict) -> None:
        self.request_count += 1
        invoke_id = request.get("invokeId", 0)
        service = request.get("service", "")
        response: dict = {"invokeId": invoke_id, "service": service}
        try:
            response["result"] = self._dispatch(connection, service, request)
            response["error"] = None
        except MmsError as exc:
            response["result"] = None
            response["error"] = str(exc)
        connection.send(_frame(response))

    def _dispatch(
        self, connection: TcpConnection, service: str, request: dict
    ) -> MmsValue:
        if service == "initiate":
            return {"maxPduSize": 65000, "version": 1}
        if service == "identify":
            return self.provider.mms_identify()
        if service == "getNameList":
            return self.provider.mms_get_name_list(
                request.get("objectClass", "namedVariable"),
                request.get("domain", ""),
            )
        if service == "read":
            references = request.get("references", [])
            results = []
            for reference in references:
                try:
                    results.append({"value": self.provider.mms_read(reference)})
                except MmsError as exc:
                    results.append({"error": str(exc)})
            return results
        if service == "write":
            self.provider.mms_write(
                request.get("reference", ""), request.get("value")
            )
            return True
        if service == "enableReports":
            if connection not in self._report_subscribers:
                self._report_subscribers.append(connection)
            return True
        raise MmsError(f"unsupported service {service!r}")

    # ------------------------------------------------------------------
    def send_report(self, values: dict[str, MmsValue]) -> None:
        """Unsolicited information report to subscribed clients."""
        message = {
            "invokeId": 0,
            "service": "infoReport",
            "result": values,
            "error": None,
        }
        for connection in list(self._report_subscribers):
            if connection.established:
                connection.send(_frame(message))


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class MmsClient:
    """Asynchronous MMS client (used by SCADA, PLCs and attackers alike)."""

    def __init__(
        self, host: Host, server_ip: str, port: int = MMS_PORT, name: str = ""
    ) -> None:
        self.host = host
        self.server_ip = server_ip
        self.port = port
        self.name = name or f"mms-client:{host.name}"
        self._connection: Optional[TcpConnection] = None
        self._framer = _Framer()
        self._pending: dict[int, Callable[[MmsValue, Optional[str]], None]] = {}
        self._invoke_id = 0
        self._ready_callbacks: list[Callable[[], None]] = []
        self.on_report: Optional[Callable[[dict], None]] = None
        self.on_disconnect: Optional[Callable[[], None]] = None
        self.associated = False

    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Open TCP and send the MMS initiate request."""
        if self._connection is not None:
            return
        self._connection = self.host.tcp.connect(
            self.server_ip,
            self.port,
            on_open=self._on_open,
            on_data=self._on_data,
            on_close=self._on_close,
        )

    @property
    def connected(self) -> bool:
        return self.associated

    def when_ready(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once the association is up (immediately if so)."""
        if self.associated:
            callback()
        else:
            self._ready_callbacks.append(callback)

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------
    def request(
        self,
        service: str,
        params: Optional[dict] = None,
        on_reply: Optional[Callable[[MmsValue, Optional[str]], None]] = None,
    ) -> int:
        if self._connection is None or not self._connection.established:
            raise MmsError(f"{self.name}: not connected")
        self._invoke_id += 1
        message = {"invokeId": self._invoke_id, "service": service}
        if params:
            message.update(params)
        if on_reply is not None:
            self._pending[self._invoke_id] = on_reply
        self._connection.send(_frame(message))
        return self._invoke_id

    def read(
        self,
        references: list[str],
        on_reply: Callable[[list, Optional[str]], None],
    ) -> int:
        return self.request("read", {"references": references}, on_reply)

    def write(
        self,
        reference: str,
        value: MmsValue,
        on_reply: Optional[Callable[[MmsValue, Optional[str]], None]] = None,
    ) -> int:
        return self.request(
            "write", {"reference": reference, "value": value}, on_reply
        )

    def get_name_list(
        self,
        on_reply: Callable[[list, Optional[str]], None],
        object_class: str = "namedVariable",
        domain: str = "",
    ) -> int:
        return self.request(
            "getNameList",
            {"objectClass": object_class, "domain": domain},
            on_reply,
        )

    def identify(self, on_reply: Callable[[dict, Optional[str]], None]) -> int:
        return self.request("identify", {}, on_reply)

    def enable_reports(
        self, on_reply: Optional[Callable[[MmsValue, Optional[str]], None]] = None
    ) -> int:
        return self.request("enableReports", {}, on_reply)

    # ------------------------------------------------------------------
    def _on_open(self) -> None:
        self._invoke_id += 1
        self._pending[self._invoke_id] = self._on_initiate_reply
        self._connection.send(
            _frame({"invokeId": self._invoke_id, "service": "initiate"})
        )

    def _on_initiate_reply(self, result: MmsValue, error: Optional[str]) -> None:
        if error is None:
            self.associated = True
            callbacks, self._ready_callbacks = self._ready_callbacks, []
            for callback in callbacks:
                callback()

    def _on_data(self, data: bytes) -> None:
        for raw in self._framer.feed(data):
            try:
                message = decode_value(raw)
            except CodecError:
                continue
            if not isinstance(message, dict):
                continue
            if message.get("service") == "infoReport":
                if self.on_report is not None:
                    self.on_report(message.get("result") or {})
                continue
            callback = self._pending.pop(message.get("invokeId", -1), None)
            if callback is not None:
                callback(message.get("result"), message.get("error"))

    def _on_close(self) -> None:
        self._connection = None
        self.associated = False
        if self.on_disconnect is not None:
            self.on_disconnect()
