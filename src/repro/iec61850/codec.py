"""BER-style TLV codec for protocol payloads.

A compact tag-length-value encoding in the spirit of the ASN.1 BER used by
MMS and GOOSE.  It is not byte-compatible with ISO 9506 (a non-goal, see
DESIGN.md), but it has the properties the cyber range needs:

* messages on the virtual wire are real byte strings,
* they can be decoded without a schema (self-describing tags),
* tampering mid-flight (the MITM pipeline) works on bytes, not objects.

Supported value types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``list`` (heterogeneous) and ``dict`` with string keys.

Wire layout: ``tag(1) | length(varint) | value``.  Lengths use the BER
definite form: one byte below 128, else ``0x80 | n`` followed by ``n``
length bytes.
"""

from __future__ import annotations

import struct
from typing import Any

TAG_NULL = 0x05
TAG_BOOL = 0x01
TAG_INT = 0x02
TAG_FLOAT = 0x09
TAG_OCTETS = 0x04
TAG_STRING = 0x0C
TAG_SEQUENCE = 0x30
TAG_MAP = 0x31


class CodecError(Exception):
    """Raised on malformed TLV input."""


def memoize_by_identity(decode, slots: int = 1):
    """Decode memo of ``slots`` entries keyed by payload *identity*.

    A multicast frame is delivered to every subscriber with the *same*
    payload bytes object, so wrapping a decoder with this helper makes the
    decode happen once per frame instead of once per receiver.  With the
    batched receive path several frames (distinct payloads) land on a host
    in one kernel event, interleaving subscribers across payloads — a
    batch-sized memo (``slots > 1``) keeps every payload of the batch
    cached across the whole dispatch loop.  Safe by construction: the memo
    retains the bytes references (so ``id()`` reuse is impossible while
    cached), bytes are immutable, and callers treat decoded messages as
    read-only.  Failed decodes are not cached; eviction is FIFO.
    """
    if slots <= 1:
        last_payload = None
        last_result = None

        def memoized(payload):
            nonlocal last_payload, last_result
            if payload is last_payload:
                return last_result
            result = decode(payload)
            last_payload = payload
            last_result = result
            return result

        return memoized

    cache: dict[int, tuple[Any, Any]] = {}

    def memoized(payload):
        entry = cache.get(id(payload))
        if entry is not None and entry[0] is payload:
            return entry[1]
        result = decode(payload)
        if len(cache) >= slots:
            cache.pop(next(iter(cache)))
        cache[id(payload)] = (payload, result)
        return result

    return memoized


def encode_value(value: Any) -> bytes:
    """Encode a Python value to TLV bytes."""
    if value is None:
        return _tlv(TAG_NULL, b"")
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return _tlv(TAG_BOOL, b"\x01" if value else b"\x00")
    if isinstance(value, int):
        return _tlv(TAG_INT, _encode_int(value))
    if isinstance(value, float):
        return _tlv(TAG_FLOAT, struct.pack(">d", value))
    if isinstance(value, bytes):
        return _tlv(TAG_OCTETS, value)
    if isinstance(value, str):
        return _tlv(TAG_STRING, value.encode("utf-8"))
    if isinstance(value, (list, tuple)):
        body = b"".join(encode_value(item) for item in value)
        return _tlv(TAG_SEQUENCE, body)
    if isinstance(value, dict):
        parts = []
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"map keys must be str, got {type(key).__name__}")
            parts.append(encode_value(key))
            parts.append(encode_value(item))
        return _tlv(TAG_MAP, b"".join(parts))
    raise CodecError(f"cannot encode type {type(value).__name__}")


def decode_value(data: bytes) -> Any:
    """Decode TLV bytes produced by :func:`encode_value`."""
    value, consumed = _decode_at(data, 0)
    if consumed != len(data):
        raise CodecError(
            f"trailing bytes after value: consumed {consumed} of {len(data)}"
        )
    return value


# ---------------------------------------------------------------------------


def _tlv(tag: int, body: bytes) -> bytes:
    return bytes([tag]) + _encode_length(len(body)) + body


def _encode_length(length: int) -> bytes:
    if length < 0x80:
        return bytes([length])
    raw = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(raw)]) + raw


def _encode_int(value: int) -> bytes:
    length = max(1, (value.bit_length() + 8) // 8)
    return value.to_bytes(length, "big", signed=True)


def _decode_length(data: bytes, offset: int) -> tuple[int, int]:
    if offset >= len(data):
        raise CodecError("truncated length")
    first = data[offset]
    if first < 0x80:
        return first, offset + 1
    count = first & 0x7F
    end = offset + 1 + count
    if count == 0 or end > len(data):
        raise CodecError("malformed long-form length")
    return int.from_bytes(data[offset + 1 : end], "big"), end


def _decode_at(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise CodecError("truncated value")
    tag = data[offset]
    length, body_start = _decode_length(data, offset + 1)
    body_end = body_start + length
    if body_end > len(data):
        raise CodecError(f"value body extends past buffer (tag 0x{tag:02x})")
    body = data[body_start:body_end]
    if tag == TAG_NULL:
        if body:
            raise CodecError("null with non-empty body")
        return None, body_end
    if tag == TAG_BOOL:
        if len(body) != 1:
            raise CodecError("bool body must be a single byte")
        return body[0] != 0, body_end
    if tag == TAG_INT:
        if not body:
            raise CodecError("empty integer body")
        return int.from_bytes(body, "big", signed=True), body_end
    if tag == TAG_FLOAT:
        if len(body) != 8:
            raise CodecError("float body must be 8 bytes")
        return struct.unpack(">d", body)[0], body_end
    if tag == TAG_OCTETS:
        return body, body_end
    if tag == TAG_STRING:
        try:
            return body.decode("utf-8"), body_end
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 string: {exc}") from exc
    if tag == TAG_SEQUENCE:
        items = []
        cursor = 0
        while cursor < len(body):
            item, cursor = _decode_at(body, cursor)
            items.append(item)
        return items, body_end
    if tag == TAG_MAP:
        mapping = {}
        cursor = 0
        while cursor < len(body):
            key, cursor = _decode_at(body, cursor)
            if not isinstance(key, str):
                raise CodecError("map key is not a string")
            value, cursor = _decode_at(body, cursor)
            mapping[key] = value
        return mapping, body_end
    raise CodecError(f"unknown tag 0x{tag:02x}")
