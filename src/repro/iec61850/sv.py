"""Sampled Values (IEC 61850-9-2) — measurement streaming.

L2 variant on ethertype ``0x88BA``; the routable variant lives in
:mod:`repro.iec61850.rgoose`.  The cyber range uses SV for sharing analogue
measurements between IEDs (e.g. the two ends of a differential-protection
zone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.iec61850.codec import (
    CodecError,
    decode_value,
    encode_value,
    memoize_by_identity,
)
from repro.kernel import MS
from repro.netem.frames import ETHERTYPE_SV, EthernetFrame
from repro.netem.host import Host

DEFAULT_SV_MAC = "01:0c:cd:04:00:01"


@dataclass
class SvMessage:
    """One sampled-values APDU."""

    sv_id: str
    smp_cnt: int
    timestamp_us: int
    samples: list  # list of floats (or [name, value] pairs)

    def to_bytes(self) -> bytes:
        return encode_value(
            {
                "svID": self.sv_id,
                "smpCnt": self.smp_cnt,
                "t": self.timestamp_us,
                "seqData": self.samples,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "SvMessage":
        decoded = decode_value(data)
        if not isinstance(decoded, dict):
            raise CodecError("SV payload is not a map")
        return cls(
            sv_id=decoded.get("svID", ""),
            smp_cnt=int(decoded.get("smpCnt", 0)),
            timestamp_us=int(decoded.get("t", 0)),
            samples=list(decoded.get("seqData", [])),
        )


class SvPublisher:
    """Streams samples on the L2 multicast bus at a fixed rate."""

    def __init__(
        self,
        host: Host,
        sv_id: str,
        dst_mac: str = DEFAULT_SV_MAC,
        interval_us: int = 100 * MS,
    ) -> None:
        self.host = host
        self.sv_id = sv_id
        self.dst_mac = dst_mac
        self.interval_us = interval_us
        self.smp_cnt = 0
        self.tx_count = 0
        self._task = None
        self._sample_source: Optional[Callable[[], list]] = None

    def start(self, sample_source: Callable[[], list]) -> None:
        if self._task is not None:
            return
        self._sample_source = sample_source
        self._task = self.host.simulator.every(
            self.interval_us, self._publish, label=f"sv:{self.sv_id}"
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _publish(self) -> None:
        samples = self._sample_source() if self._sample_source else []
        message = SvMessage(
            sv_id=self.sv_id,
            smp_cnt=self.smp_cnt,
            timestamp_us=self.host.simulator.now,
            samples=list(samples),
        )
        self.smp_cnt = (self.smp_cnt + 1) & 0xFFFF
        self.tx_count += 1
        # appid = svID: lets subscription-aware switches prune the stream.
        self.host.send_ethernet(
            self.dst_mac, ETHERTYPE_SV, message.to_bytes(), appid=self.sv_id
        )


#: Shared decode memo: one decode per frame even when a delivery batch
#: interleaves several subscribers across several payloads.
decode_sv = memoize_by_identity(SvMessage.from_bytes, slots=8)


class SvSubscriber:
    """Receives an L2 SV stream by svID."""

    def __init__(
        self,
        host: Host,
        sv_id: str,
        on_samples: Callable[[SvMessage], None],
        dst_mac: str = DEFAULT_SV_MAC,
    ) -> None:
        self.host = host
        self.sv_id = sv_id
        self.on_samples = on_samples
        self.last_message: Optional[SvMessage] = None
        self.rx_count = 0
        host.register_ethertype_handler(ETHERTYPE_SV, self._on_frame)
        host.join_l2_group(dst_mac, sv_id)

    def _on_frame(self, frame: EthernetFrame) -> None:
        if not isinstance(frame.payload, bytes):
            return
        try:
            message = decode_sv(frame.payload)
        except CodecError:
            return
        if message.sv_id != self.sv_id:
            return
        self.rx_count += 1
        self.last_message = message
        self.on_samples(message)
