"""R-GOOSE and R-SV: routable GOOSE / Sampled Values (IEC 61850-90-5).

For inter-substation protection (the paper's PDIF differential protection
and CILO interlocking across substations) the L2 multicast payloads are
wrapped in a session header and carried over UDP/IP multicast so routers/
the WAN can forward them.  Port 102 is used per IEC 61850-90-5.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.iec61850.codec import (
    CodecError,
    decode_value,
    encode_value,
    memoize_by_identity,
)
from repro.iec61850.goose import GooseMessage, GoosePublisher, decode_goose
from repro.iec61850.sv import SvMessage
from repro.kernel import MS, SECOND
from repro.netem.host import Host, UdpSocket

RGOOSE_PORT = 102
#: Default multicast groups for routable traffic.
DEFAULT_RGOOSE_GROUP = "239.192.0.1"
DEFAULT_RSV_GROUP = "239.192.0.2"

_SESSION_RGOOSE = "r-goose"
_SESSION_RSV = "r-sv"


def _wrap(session_type: str, payload: bytes) -> bytes:
    return encode_value({"sessionType": session_type, "payload": payload})


def _unwrap_uncached(data: bytes) -> tuple[str, bytes]:
    decoded = decode_value(data)
    if not isinstance(decoded, dict):
        raise CodecError("session wrapper is not a map")
    return decoded.get("sessionType", ""), decoded.get("payload", b"")


#: A routable multicast datagram reaches every group member with the same
#: bytes object, so the session wrapper and the inner SV message are
#: decoded once per frame, not once per receiver (see
#: :func:`codec.memoize_by_identity`).
_unwrap = memoize_by_identity(_unwrap_uncached, slots=8)
_decode_sv = memoize_by_identity(SvMessage.from_bytes, slots=8)


class _UdpMulticastEndpoint:
    """Shared UDP socket + multicast membership per host."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.handlers: list[Callable[[str, bytes], None]] = []
        self.socket: UdpSocket = host.udp_bind(RGOOSE_PORT, self._on_datagram)

    @classmethod
    def for_host(cls, host: Host) -> "_UdpMulticastEndpoint":
        endpoint = getattr(host, "_rgoose_endpoint", None)
        if endpoint is None:
            endpoint = cls(host)
            host._rgoose_endpoint = endpoint
        return endpoint

    def _on_datagram(self, src_ip: str, src_port: int, payload: bytes) -> None:
        for handler in list(self.handlers):
            handler(src_ip, payload)


class RGoosePublisher(GoosePublisher):
    """GOOSE state machine, UDP multicast transport."""

    def __init__(
        self,
        host: Host,
        gocb_ref: str,
        dat_set: str,
        go_id: str = "",
        group_ip: str = DEFAULT_RGOOSE_GROUP,
    ) -> None:
        super().__init__(host, gocb_ref, dat_set, go_id)
        self.group_ip = group_ip
        self._endpoint = _UdpMulticastEndpoint.for_host(host)

    def _publish_now(self) -> None:  # override the L2 send with UDP
        message = GooseMessage(
            gocb_ref=self.gocb_ref,
            dat_set=self.dat_set,
            go_id=self.go_id,
            st_num=self.st_num,
            sq_num=self.sq_num,
            time_allowed_to_live_ms=max(2 * self._interval_us // MS, 10),
            test=False,
            conf_rev=self.conf_rev,
            timestamp_us=self.simulator.now,
            all_data=self._values,
        )
        self._endpoint.socket.sendto(
            self.group_ip,
            RGOOSE_PORT,
            _wrap(_SESSION_RGOOSE, message.to_bytes()),
            appid=self.gocb_ref,
        )
        self.tx_count += 1
        self.sq_num += 1
        self._retransmit_event = self.simulator.schedule(
            self._interval_us, self._on_timer, label=f"rgoose:{self.go_id}"
        )
        from repro.iec61850.goose import GOOSE_MAX_INTERVAL_US

        self._interval_us = min(self._interval_us * 2, GOOSE_MAX_INTERVAL_US)


class RGooseSubscriber:
    """Subscribes to a gocbRef on a UDP multicast group."""

    def __init__(
        self,
        host: Host,
        gocb_ref: str,
        on_update: Callable[[GooseMessage], None],
        group_ip: str = DEFAULT_RGOOSE_GROUP,
        stale_timeout_us: int = 3 * SECOND,
    ) -> None:
        self.host = host
        self.gocb_ref = gocb_ref
        self.on_update = on_update
        self.stale_timeout_us = stale_timeout_us
        self.last_message: Optional[GooseMessage] = None
        self.last_seen_us = -1
        self.rx_count = 0
        host.join_multicast_group(group_ip, appid=gocb_ref)
        endpoint = _UdpMulticastEndpoint.for_host(host)
        endpoint.handlers.append(self._on_payload)

    @property
    def values(self) -> list:
        return self.last_message.all_data if self.last_message else []

    @property
    def healthy(self) -> bool:
        if self.last_seen_us < 0:
            return False
        return self.host.simulator.now - self.last_seen_us <= self.stale_timeout_us

    def _on_payload(self, src_ip: str, data: bytes) -> None:
        try:
            session_type, payload = _unwrap(data)
            if session_type != _SESSION_RGOOSE:
                return
            message = decode_goose(payload)
        except CodecError:
            return
        if message.gocb_ref != self.gocb_ref:
            return
        self.rx_count += 1
        self.last_seen_us = self.host.simulator.now
        is_change = (
            self.last_message is None or message.st_num != self.last_message.st_num
        )
        self.last_message = message
        if is_change:
            self.on_update(message)


class RSvPublisher:
    """Routable Sampled Values: periodic measurement stream over UDP."""

    def __init__(
        self,
        host: Host,
        sv_id: str,
        group_ip: str = DEFAULT_RSV_GROUP,
        interval_us: int = 100 * MS,
    ) -> None:
        self.host = host
        self.sv_id = sv_id
        self.group_ip = group_ip
        self.interval_us = interval_us
        self.smp_cnt = 0
        self.tx_count = 0
        self._endpoint = _UdpMulticastEndpoint.for_host(host)
        self._task = None
        self._sample_source: Optional[Callable[[], list]] = None

    def start(self, sample_source: Callable[[], list]) -> None:
        """Begin streaming; ``sample_source`` is polled each interval."""
        if self._task is not None:
            return
        self._sample_source = sample_source
        self._task = self.host.simulator.every(
            self.interval_us, self._publish, label=f"rsv:{self.sv_id}"
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _publish(self) -> None:
        samples = self._sample_source() if self._sample_source else []
        message = SvMessage(
            sv_id=self.sv_id,
            smp_cnt=self.smp_cnt,
            timestamp_us=self.host.simulator.now,
            samples=list(samples),
        )
        self.smp_cnt = (self.smp_cnt + 1) & 0xFFFF
        self.tx_count += 1
        self._endpoint.socket.sendto(
            self.group_ip,
            RGOOSE_PORT,
            _wrap(_SESSION_RSV, message.to_bytes()),
            appid=self.sv_id,
        )


class RSvSubscriber:
    """Receives a routable SV stream by svID."""

    def __init__(
        self,
        host: Host,
        sv_id: str,
        on_samples: Callable[[SvMessage], None],
        group_ip: str = DEFAULT_RSV_GROUP,
        stale_timeout_us: int = 1 * SECOND,
    ) -> None:
        self.host = host
        self.sv_id = sv_id
        self.on_samples = on_samples
        self.stale_timeout_us = stale_timeout_us
        self.last_message: Optional[SvMessage] = None
        self.last_seen_us = -1
        self.rx_count = 0
        host.join_multicast_group(group_ip, appid=sv_id)
        endpoint = _UdpMulticastEndpoint.for_host(host)
        endpoint.handlers.append(self._on_payload)

    @property
    def healthy(self) -> bool:
        if self.last_seen_us < 0:
            return False
        return self.host.simulator.now - self.last_seen_us <= self.stale_timeout_us

    def _on_payload(self, src_ip: str, data: bytes) -> None:
        try:
            session_type, payload = _unwrap(data)
            if session_type != _SESSION_RSV:
                return
            message = _decode_sv(payload)
        except CodecError:
            return
        if message.sv_id != self.sv_id:
            return
        self.rx_count += 1
        self.last_seen_us = self.host.simulator.now
        self.last_message = message
        self.on_samples(message)
