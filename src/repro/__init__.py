"""SG-ML: automated generation of smart grid cyber ranges.

Reproduction of "Towards Automated Generation of Smart Grid Cyber Range for
Cybersecurity Experiments and Training" (DSN 2023, arXiv:2404.00869).

The package is organised as a stack of substrates (power flow simulation,
network emulation, IEC 61850 / IEC 61131 / Modbus protocol implementations,
virtual devices) with the paper's contribution — the SG-ML modelling language
and its processor toolchain — on top:

* :mod:`repro.sgml` — the SG-ML model set and the SG-ML Processor that
  "compiles" SCL + supplementary XML into an operational cyber range.
* :mod:`repro.scl` — IEC 61850 SCL (SSD/SCD/ICD/SED) object model, parsers,
  writers and the SSD/SCD mergers.
* :mod:`repro.powersim` — steady-state AC power flow (Pandapower substitute).
* :mod:`repro.netem` — discrete-event L2/L3 network emulator (Mininet
  substitute).
* :mod:`repro.iec61850` — MMS, GOOSE, R-GOOSE and R-SV protocol stacks.
* :mod:`repro.iec61131` — Structured Text interpreter + PLCopen XML loader.
* :mod:`repro.ied`, :mod:`repro.plc`, :mod:`repro.scada` — virtual devices.
* :mod:`repro.range` — the operational cyber range runtime.
* :mod:`repro.attacks` — attack tooling for the case studies (FCI, MITM).
* :mod:`repro.epic` — EPIC-testbed-style demonstration model generator.

Quickstart::

    from repro.epic import generate_epic_model
    from repro.sgml import SgmlModelSet, SgmlProcessor

    model_dir = generate_epic_model("/tmp/epic")
    model = SgmlModelSet.from_directory(model_dir)
    cyber_range = SgmlProcessor(model).compile()
    cyber_range.start()
    cyber_range.run_for(seconds=2.0)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
