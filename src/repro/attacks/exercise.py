"""Scripted training exercises — legacy playbook API (compat shim).

.. deprecated::
    :class:`ExercisePlaybook` is kept as a thin compatibility shim over the
    event-driven :mod:`repro.scenario` subsystem: :meth:`ExercisePlaybook.
    run` converts the playbook via :meth:`~repro.scenario.Scenario.
    from_playbook` (one ``at()``-triggered phase per scripted action) and
    executes it through ``CyberRange.run_scenario``.  New code should build
    a :class:`~repro.scenario.Scenario` directly — it adds data-plane
    ``when()`` triggers, phase sequencing with ``after()``, and scored
    outcomes that a timestamp script cannot express.

Ordering contract: actions are sorted by ``time_s`` with a *stable* sort
and the engine arms same-instant phases in that order, so actions sharing
a timestamp execute in the order they were added to the playbook (red
before blue at the same instant iff red was added first).  Tests cover
this; it is a guarantee, not an accident of the sort implementation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.range import CyberRange
from repro.scenario import Scenario

ActionFn = Callable[[CyberRange], Any]


@dataclass
class ExerciseAction:
    """One scheduled step of the exercise."""

    time_s: float
    description: str
    execute: ActionFn
    #: "red" (attacker), "blue" (defender/operator), "white" (observer).
    team: str = "red"


@dataclass(frozen=True)
class ExerciseLogEntry:
    time_s: float
    team: str
    description: str
    result: str


@dataclass
class ExercisePlaybook:
    """An ordered script of actions plus the resulting after-action log."""

    name: str = "exercise"
    actions: list[ExerciseAction] = field(default_factory=list)
    log: list[ExerciseLogEntry] = field(default_factory=list)

    def add(
        self,
        time_s: float,
        description: str,
        execute: ActionFn,
        team: str = "red",
    ) -> "ExercisePlaybook":
        """Append an action; returns self for chaining."""
        self.actions.append(
            ExerciseAction(
                time_s=time_s, description=description,
                execute=execute, team=team,
            )
        )
        return self

    # ------------------------------------------------------------------
    def to_scenario(self) -> Scenario:
        """The event-driven equivalent of this playbook."""
        return Scenario.from_playbook(self)

    def run(self, cyber_range: CyberRange, duration_s: float) -> None:
        """Convert to a scenario and run it for ``duration_s``.

        Starts the range if needed.  Action exceptions are caught
        and logged (a failed attack step is a legitimate exercise outcome,
        not a harness crash).  Same-timestamp actions run in insertion
        order (see the module docstring's ordering contract).

        .. deprecated:: emits :class:`DeprecationWarning`; build a
           :class:`~repro.scenario.Scenario` directly (the ROADMAP's
           playbook deprecation path — the shim is frozen and will be
           removed once no in-repo caller remains).
        """
        warnings.warn(
            "ExercisePlaybook is deprecated: build a repro.scenario.Scenario "
            "directly (at()-triggered phases replace timestamp scripts; "
            "when()/after() triggers and scored outcomes replace manual "
            "observation)",
            DeprecationWarning,
            stacklevel=2,
        )
        run = cyber_range.run_scenario(self.to_scenario(), duration_s)
        self.log.extend(
            ExerciseLogEntry(
                time_s=entry.time_s,
                team=entry.team,
                description=entry.description,
                result=entry.result,
            )
            for entry in run.log
        )

    # ------------------------------------------------------------------
    def after_action_report(self) -> str:
        """Human-readable report of what happened, in order."""
        lines = [f"=== after-action report: {self.name} ==="]
        for entry in self.log:
            lines.append(
                f"[{entry.time_s:8.3f}s] ({entry.team:>5}) "
                f"{entry.description} -> {entry.result}"
            )
        return "\n".join(lines)
