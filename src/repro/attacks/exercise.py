"""Scripted training exercises (the paper's "hands-on training" use case).

A :class:`ExercisePlaybook` schedules attack/defence actions at virtual
times on a running cyber range and collects an after-action report — the
artifact a trainer reviews with trainees.  Actions are plain callables so
playbooks compose the attack primitives from this package with operator
actions (HMI commands) and observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.kernel import SECOND
from repro.range import CyberRange

ActionFn = Callable[[CyberRange], Any]


@dataclass
class ExerciseAction:
    """One scheduled step of the exercise."""

    time_s: float
    description: str
    execute: ActionFn
    #: "red" (attacker), "blue" (defender/operator), "white" (observer).
    team: str = "red"


@dataclass(frozen=True)
class ExerciseLogEntry:
    time_s: float
    team: str
    description: str
    result: str


@dataclass
class ExercisePlaybook:
    """An ordered script of actions plus the resulting after-action log."""

    name: str = "exercise"
    actions: list[ExerciseAction] = field(default_factory=list)
    log: list[ExerciseLogEntry] = field(default_factory=list)

    def add(
        self,
        time_s: float,
        description: str,
        execute: ActionFn,
        team: str = "red",
    ) -> "ExercisePlaybook":
        """Append an action; returns self for chaining."""
        self.actions.append(
            ExerciseAction(
                time_s=time_s, description=description,
                execute=execute, team=team,
            )
        )
        return self

    # ------------------------------------------------------------------
    def run(self, cyber_range: CyberRange, duration_s: float) -> None:
        """Schedule every action and run the range for ``duration_s``.

        Must be called on a started range.  Action exceptions are caught
        and logged (a failed attack step is a legitimate exercise outcome,
        not a harness crash).
        """
        base = cyber_range.simulator.now

        def make_runner(action: ExerciseAction) -> Callable[[], None]:
            def runner() -> None:
                try:
                    outcome = action.execute(cyber_range)
                    result = "ok" if outcome is None else str(outcome)
                except Exception as exc:  # after-action visibility
                    result = f"FAILED: {exc}"
                self.log.append(
                    ExerciseLogEntry(
                        time_s=(cyber_range.simulator.now - base) / SECOND,
                        team=action.team,
                        description=action.description,
                        result=result,
                    )
                )

            return runner

        for action in sorted(self.actions, key=lambda a: a.time_s):
            cyber_range.simulator.schedule(
                int(action.time_s * SECOND),
                make_runner(action),
                label=f"exercise:{self.name}",
            )
        cyber_range.run_for(duration_s)

    # ------------------------------------------------------------------
    def after_action_report(self) -> str:
        """Human-readable report of what happened, in order."""
        lines = [f"=== after-action report: {self.name} ==="]
        for entry in self.log:
            lines.append(
                f"[{entry.time_s:8.3f}s] ({entry.team:>5}) "
                f"{entry.description} -> {entry.result}"
            )
        return "\n".join(lines)
