"""Network reconnaissance: ARP sweep + TCP connect scan.

The paper notes users "can utilize any penetration testing tool like Nmap
and Metasploit on a virtual node of the cyber range"; this module is the
built-in equivalent for the emulated network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel import MS, SECOND
from repro.netem.addresses import int_to_ip, ip_to_int
from repro.netem.host import Host

#: Ports a smart grid scan cares about.
DEFAULT_PORTS = (102, 502)  # MMS, Modbus


@dataclass
class ScanReport:
    """Discovered hosts and their open ports."""

    live_hosts: dict[str, str] = field(default_factory=dict)  # ip → mac
    open_ports: dict[str, list[int]] = field(default_factory=dict)
    refused_ports: dict[str, list[int]] = field(default_factory=dict)
    finished: bool = False

    def describe(self) -> str:
        lines = [f"{len(self.live_hosts)} hosts up"]
        for ip in sorted(self.live_hosts, key=ip_to_int):
            ports = ",".join(str(p) for p in self.open_ports.get(ip, []))
            lines.append(f"  {ip} ({self.live_hosts[ip]}) open: [{ports}]")
        return "\n".join(lines)


class NetworkScanner:
    """Drives a sweep from a (compromised or attacker-owned) host."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.report = ScanReport()

    # ------------------------------------------------------------------
    def arp_sweep(self, network_ip: str, start: int = 1, end: int = 254) -> None:
        """Broadcast ARP who-has for every address in the /24 range."""
        base = ip_to_int(network_ip) & 0xFFFFFF00
        for last_octet in range(start, end + 1):
            target = int_to_ip(base + last_octet)
            if target == self.host.ip:
                continue
            self.host._send_arp_request(target)

    def collect_live_hosts(self) -> None:
        """Harvest ARP replies received so far into the report."""
        for ip, mac in self.host.arp_table.items():
            self.report.live_hosts[ip] = mac

    # ------------------------------------------------------------------
    def port_scan(self, ip: str, ports=DEFAULT_PORTS) -> None:
        """TCP connect scan: SYN → SYN/ACK = open, RST = refused."""
        for port in ports:
            self._probe(ip, port)

    def _probe(self, ip: str, port: int) -> None:
        connection = None

        def on_open() -> None:
            self.report.open_ports.setdefault(ip, []).append(port)
            if connection is not None:
                connection.close()

        def on_close() -> None:
            if port not in self.report.open_ports.get(ip, []):
                self.report.refused_ports.setdefault(ip, []).append(port)

        connection = self.host.tcp.connect(
            ip, port, on_open=on_open, on_close=on_close
        )

    # ------------------------------------------------------------------
    def run_full_scan(
        self,
        network_ip: str,
        ports=DEFAULT_PORTS,
        arp_wait_us: int = 500 * MS,
        scan_wait_us: int = 2 * SECOND,
    ) -> ScanReport:
        """Sweep, wait, probe, wait — driving the simulator in between."""
        simulator = self.host.simulator
        self.arp_sweep(network_ip)
        simulator.run_for(arp_wait_us)
        self.collect_live_hosts()
        for ip in sorted(self.report.live_hosts, key=ip_to_int):
            self.port_scan(ip, ports)
        simulator.run_for(scan_wait_us)
        self.report.finished = True
        return self.report
