"""False command injection (paper §IV-B).

"Assuming that the attacker has compromised one of the nodes in the system
and run malwares like CrashOverride to transmit fake IEC 61850 MMS
commands ... Once the IED receives a circuit breaker (CB) open command,
for instance, the corresponding CB is operated, and the power flow change
is calculated by the power flow simulator."

The injector is nothing more than a legitimate MMS client on a node the
attacker controls — which is exactly the point: the protocol has no
authentication, so a standard-compliant write is indistinguishable from an
operator action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.iec61850.mms import MmsClient
from repro.netem.host import Host


@dataclass
class InjectionResult:
    """Outcome of one injected command."""

    reference: str
    value: object
    sent_at_us: int
    completed_at_us: int = -1
    error: Optional[str] = None

    @property
    def accepted(self) -> bool:
        return self.completed_at_us >= 0 and self.error is None


@dataclass
class FalseCommandInjector:
    """Drives fake MMS control writes from a compromised host."""

    host: Host
    results: list[InjectionResult] = field(default_factory=list)
    _clients: dict[str, MmsClient] = field(default_factory=dict)

    def _client(self, server_ip: str) -> MmsClient:
        client = self._clients.get(server_ip)
        if client is None:
            client = MmsClient(self.host, server_ip, name=f"fci:{self.host.name}")
            client.connect()
            self._clients[server_ip] = client
        return client

    def inject(
        self, server_ip: str, reference: str, value: object
    ) -> InjectionResult:
        """Send one MMS write; result completes asynchronously."""
        result = InjectionResult(
            reference=reference, value=value, sent_at_us=self.host.simulator.now
        )
        self.results.append(result)
        client = self._client(server_ip)

        def fire() -> None:
            client.write(reference, value, on_reply=self._on_reply(result))

        client.when_ready(fire)
        return result

    def open_breaker(self, server_ip: str, ied_name: str) -> InjectionResult:
        """Convenience: emit the classic CB-open against an IED."""
        return self.inject(
            server_ip, f"{ied_name}LD0/XCBR1.Oper.ctlVal", False
        )

    def close_breaker(self, server_ip: str, ied_name: str) -> InjectionResult:
        return self.inject(server_ip, f"{ied_name}LD0/XCBR1.Oper.ctlVal", True)

    def _on_reply(self, result: InjectionResult):
        def callback(_value, error: Optional[str]) -> None:
            result.completed_at_us = self.host.simulator.now
            result.error = error

        return callback

    @property
    def accepted_count(self) -> int:
        return sum(1 for result in self.results if result.accepted)
