"""ARP-spoofing man-in-the-middle (paper §IV-B, Fig. 6).

"Typically man-in-the-middle (MITM) attack is mounted by using a strategy
called ARP spoofing.  This confuses the mapping between a device's logical
(IP) address and physical address.  Using ARP spoofing, an attacker can
mislead the traffic to itself for interception and manipulation.  As a
consequence, the attacker could possibly mislead the SCADA HMI or the PLC
to confuse the plant control."

Three layers:

* :class:`ArpSpoofer` — poisons two victims' caches periodically so their
  mutual traffic flows through the attacker.
* :class:`MitmPipeline` — installs a packet interceptor on the attacker
  host: frames between the victims are (optionally) transformed, then
  forwarded to the real destination MAC, keeping the attack transparent.
* :class:`MeasurementSpoofer` — an MMS-aware transform: tracks read
  requests (invoke id → references) and rewrites matching values in the
  responses — the exact Fig. 6 scenario of falsifying a measurement.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.iec61850.codec import CodecError, decode_value, encode_value
from repro.kernel import MS, SECOND
from repro.netem.frames import (
    ETHERTYPE_IPV4,
    EthernetFrame,
    Ipv4Packet,
    TcpSegment,
)
from repro.netem.host import Host

#: Re-poison interval; real tools (ettercap, arpspoof) use ~1-10 s.
DEFAULT_REPOISON_US = 1 * SECOND


class ArpSpoofer:
    """Keeps two victims' ARP caches poisoned."""

    def __init__(self, attacker: Host, victim_a_ip: str, victim_b_ip: str) -> None:
        self.attacker = attacker
        self.victim_a_ip = victim_a_ip
        self.victim_b_ip = victim_b_ip
        self._task = None
        self.poison_count = 0

    def start(self, repoison_us: int = DEFAULT_REPOISON_US) -> None:
        """Resolve real MACs first, then begin poisoning."""
        if self._task is not None:
            return
        # Legitimate ARP requests teach the attacker the victims' MACs
        # (needed for transparent forwarding).
        self.attacker._send_arp_request(self.victim_a_ip)
        self.attacker._send_arp_request(self.victim_b_ip)
        self._poison()
        self._task = self.attacker.simulator.every(
            repoison_us, self._poison, label="arp-spoof"
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _poison(self) -> None:
        # Claim both victim IPs with the attacker's MAC.
        self.attacker.send_gratuitous_arp(self.victim_a_ip)
        self.attacker.send_gratuitous_arp(self.victim_b_ip)
        self.poison_count += 1


TransformFn = Callable[[Ipv4Packet, str], Optional[Ipv4Packet]]
"""(packet, direction "a->b"/"b->a") → transformed packet, or None to drop."""


class MitmPipeline:
    """Intercept-transform-forward between two victims."""

    def __init__(
        self,
        attacker: Host,
        victim_a_ip: str,
        victim_b_ip: str,
        transform: Optional[TransformFn] = None,
    ) -> None:
        self.attacker = attacker
        self.victim_a_ip = victim_a_ip
        self.victim_b_ip = victim_b_ip
        self.transform = transform
        self.spoofer = ArpSpoofer(attacker, victim_a_ip, victim_b_ip)
        self.intercepted = 0
        self.forwarded = 0
        self.dropped = 0
        self.modified = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.spoofer.start()
        self.attacker.packet_interceptor = self._intercept

    def stop(self) -> None:
        self.spoofer.stop()
        self.attacker.packet_interceptor = None

    # ------------------------------------------------------------------
    def _intercept(self, frame: EthernetFrame) -> bool:
        if frame.ethertype != ETHERTYPE_IPV4:
            return False
        packet = frame.payload
        if not isinstance(packet, Ipv4Packet):
            return False
        if packet.src_ip == self.victim_a_ip and packet.dst_ip == self.victim_b_ip:
            direction = "a->b"
        elif packet.src_ip == self.victim_b_ip and packet.dst_ip == self.victim_a_ip:
            direction = "b->a"
        else:
            return False  # not our victims: let the host handle it normally
        if frame.src_mac == self.attacker.mac:
            return False  # our own forwarded frame echoed back
        self.intercepted += 1
        transformed: Optional[Ipv4Packet] = packet
        if self.transform is not None:
            transformed = self.transform(packet, direction)
            if transformed is None:
                self.dropped += 1
                return True
            if transformed is not packet:
                self.modified += 1
        self._forward(transformed)
        return True

    def _forward(self, packet: Ipv4Packet) -> None:
        real_mac = self.attacker.arp_table.get(packet.dst_ip)
        if real_mac is None or real_mac == self.attacker.mac:
            # MAC not resolved yet (or self-poisoned): re-request and drop.
            self.attacker._send_arp_request(packet.dst_ip)
            self.dropped += 1
            return
        self.forwarded += 1
        self.attacker.send_frame(
            EthernetFrame(
                src_mac=self.attacker.mac,
                dst_mac=real_mac,
                ethertype=ETHERTYPE_IPV4,
                payload=packet,
            )
        )


class MeasurementSpoofer:
    """MMS-aware transform falsifying read values (Fig. 6).

    ``rewrites`` maps object references to either a constant or a callable
    ``old_value -> new_value``.  Requests flow untouched (but their invoke
    ids are recorded); responses carrying a tracked invoke id get the
    matching positions of their result list rewritten.
    """

    def __init__(self, rewrites: dict[str, object]) -> None:
        self.rewrites = rewrites
        self._pending: dict[tuple[str, int], list[str]] = {}
        self.rewritten_count = 0

    # The transform entry point for MitmPipeline.
    def __call__(
        self, packet: Ipv4Packet, direction: str
    ) -> Optional[Ipv4Packet]:
        if not isinstance(packet.payload, TcpSegment):
            return packet
        segment = packet.payload
        if not segment.payload:
            return packet
        new_payload = self._process_stream(packet, segment)
        if new_payload is None:
            return packet
        return replace(packet, payload=replace(segment, payload=new_payload))

    # ------------------------------------------------------------------
    def _process_stream(
        self, packet: Ipv4Packet, segment: TcpSegment
    ) -> Optional[bytes]:
        """Parse framed MMS messages; returns rewritten bytes or None."""
        data = segment.payload
        out = bytearray()
        changed = False
        offset = 0
        while offset + 4 <= len(data):
            length = int.from_bytes(data[offset : offset + 4], "big")
            end = offset + 4 + length
            if end > len(data):
                return None  # partial frame: pass through untouched
            body = data[offset + 4 : end]
            new_body = self._process_message(packet, body)
            if new_body is not None:
                changed = True
                out += len(new_body).to_bytes(4, "big") + new_body
            else:
                out += data[offset:end]
            offset = end
        if offset != len(data):
            return None
        return bytes(out) if changed else None

    def _process_message(
        self, packet: Ipv4Packet, body: bytes
    ) -> Optional[bytes]:
        try:
            message = decode_value(body)
        except CodecError:
            return None
        if not isinstance(message, dict):
            return None
        service = message.get("service")
        invoke_id = message.get("invokeId", -1)
        if service == "read" and "references" in message:
            # Request: remember which references this invoke id asked for.
            flow = (packet.src_ip, invoke_id)
            self._pending[flow] = list(message.get("references", []))
            return None
        if service == "read" and "result" in message:
            flow = (packet.dst_ip, invoke_id)
            references = self._pending.pop(flow, None)
            if references is None:
                return None
            results = message.get("result")
            if not isinstance(results, list):
                return None
            changed = False
            for position, reference in enumerate(references):
                if reference not in self.rewrites or position >= len(results):
                    continue
                entry = results[position]
                if not isinstance(entry, dict) or "value" not in entry:
                    continue
                rule = self.rewrites[reference]
                old = entry["value"]
                entry["value"] = rule(old) if callable(rule) else rule
                changed = changed or entry["value"] != old
            if changed:
                self.rewritten_count += 1
                return encode_value(message)
        return None
