"""Attack tooling for the paper's §IV-B case studies.

* :class:`FalseCommandInjector` (:mod:`repro.attacks.fci`) — CrashOverride-
  style false command injection: a standard-compliant MMS client on a
  compromised node emits breaker-open commands.
* :class:`ArpSpoofer` / :class:`MitmPipeline` / :class:`MeasurementSpoofer`
  (:mod:`repro.attacks.mitm`) — ARP-spoofing man-in-the-middle that
  intercepts and rewrites MMS traffic (Fig. 6: falsifying a power grid
  measurement towards SCADA/PLC).
* :class:`NetworkScanner` (:mod:`repro.attacks.scanner`) — Nmap-style ARP
  sweep + TCP connect scan for reconnaissance exercises.
"""

from repro.attacks.exercise import (
    ExerciseAction,
    ExerciseLogEntry,
    ExercisePlaybook,
)
from repro.attacks.fci import FalseCommandInjector, InjectionResult
from repro.attacks.mitm import ArpSpoofer, MeasurementSpoofer, MitmPipeline
from repro.attacks.scanner import NetworkScanner, ScanReport

__all__ = [
    "ArpSpoofer",
    "ExerciseAction",
    "ExerciseLogEntry",
    "ExercisePlaybook",
    "FalseCommandInjector",
    "InjectionResult",
    "MeasurementSpoofer",
    "MitmPipeline",
    "NetworkScanner",
    "ScanReport",
]
