"""Deterministic discrete-event simulator.

Design notes
------------
* Time is an integer count of **microseconds** (``SimTime``).  Floating point
  time would make event ordering platform dependent; integer time keeps the
  co-simulation loop exactly periodic (the paper re-runs the power flow every
  100 ms — here that is exactly 100_000 ticks).
* Events scheduled for the same instant fire in scheduling order (a
  monotonically increasing sequence number breaks ties), so a run is fully
  deterministic regardless of heap internals.
* Cancellation is lazy: :meth:`Event.cancel` marks the event and the main
  loop skips it when popped.  This keeps the hot path allocation-free.
"""

from __future__ import annotations

import heapq
import itertools
import time as _wallclock
from dataclasses import dataclass, field
from typing import Callable, NamedTuple, Optional

SimTime = int
"""Virtual time in integer microseconds."""

#: Convenience conversion constants.
US = 1
MS = 1_000
SECOND = 1_000_000


class SimulatorError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling into the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    when: SimTime
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True


class StepSlice(NamedTuple):
    """Result of one :meth:`Simulator.step_until` slice.

    ``executed`` is the number of events run inside the slice; ``done`` is
    ``True`` once every event up to the slice deadline has run and the
    clock sits exactly at that deadline — i.e. the point where a sequence
    of slices is indistinguishable from one :meth:`Simulator.run_until`.
    """

    executed: int
    done: bool


class PeriodicTask:
    """A callback re-armed every ``period`` microseconds until stopped.

    The callback receives no arguments; it can read the owning simulator's
    clock via the ``simulator.now`` property.  Used for IED/PLC scan cycles,
    SCADA polling and the power-flow tick.
    """

    def __init__(
        self,
        simulator: "Simulator",
        period: SimTime,
        callback: Callable[[], None],
        label: str = "",
        start_offset: SimTime = 0,
    ) -> None:
        if period <= 0:
            raise SimulatorError(f"period must be positive, got {period}")
        self._simulator = simulator
        self.period = period
        self.callback = callback
        self.label = label
        self._event: Optional[Event] = None
        self._stopped = False
        self._fired = 0
        self._arm(start_offset if start_offset > 0 else period)

    @property
    def fired(self) -> int:
        """Number of times the callback has run."""
        return self._fired

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Stop re-arming; a pending occurrence is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _arm(self, delay: SimTime) -> None:
        self._event = self._simulator.schedule(delay, self._fire, label=self.label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fired += 1
        # Re-arm before running the callback so a callback that raises does
        # not silently kill the task, and so the period is drift-free.
        self._arm(self.period)
        self.callback()


class Simulator:
    """Deterministic event loop with integer-microsecond virtual time."""

    def __init__(self) -> None:
        self._now: SimTime = 0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self._accounting = False
        #: Executed-event counts per label prefix (the part before ``:``),
        #: populated only while accounting is enabled.
        self.label_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current virtual time in microseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current virtual time in seconds (for display only)."""
        return self._now / SECOND

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed(self) -> int:
        """Total events executed since construction."""
        return self._processed

    def enable_accounting(self, enabled: bool = True) -> None:
        """Count executed events per label prefix (``ied-scan``,
        ``powerflow-tick``, …).  Off by default: the hot path must not pay
        a dict update per event unless someone is looking.
        """
        self._accounting = enabled

    def event_accounting(self) -> dict[str, int]:
        """Per-label-prefix executed-event counts (accounting must be on)."""
        return dict(self.label_counts)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: SimTime, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Run ``callback`` after ``delay`` microseconds of virtual time."""
        if delay < 0:
            raise SimulatorError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + int(delay), next(self._seq), callback, label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, when: SimTime, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Run ``callback`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback, label)

    def call_soon(self, callback: Callable[[], None], label: str = "") -> Event:
        """Run ``callback`` at the current instant, after queued peers.

        Used to hop out of a notification context (e.g. a point-registry
        flush) into a first-class, labelled event: same virtual timestamp,
        deterministic ordering after events already scheduled for now, and
        visible to per-label accounting.
        """
        return self.schedule(0, callback, label)

    def every(
        self,
        period: SimTime,
        callback: Callable[[], None],
        label: str = "",
        start_offset: SimTime = 0,
    ) -> PeriodicTask:
        """Create a :class:`PeriodicTask` owned by this simulator."""
        return PeriodicTask(self, period, callback, label, start_offset)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.when < self._now:
                raise SimulatorError(
                    f"event {event.label!r} scheduled at {event.when} "
                    f"but clock already at {self._now}"
                )
            self._now = event.when
            self._processed += 1
            if self._accounting:
                label = event.label.split(":", 1)[0] or "(unlabeled)"
                self.label_counts[label] = self.label_counts.get(label, 0) + 1
            event.callback()
            return True
        return False

    def run_until(self, deadline: SimTime) -> None:
        """Run all events with ``when <= deadline``, then set clock there."""
        if deadline < self._now:
            raise SimulatorError(
                f"deadline {deadline} is before current time {self._now}"
            )
        while self._queue:
            head = self._peek()
            if head is None or head.when > deadline:
                break
            self.step()
        self._now = deadline

    def run_for(self, duration: SimTime) -> None:
        """Advance virtual time by ``duration`` microseconds."""
        self.run_until(self._now + int(duration))

    def step_until(
        self, deadline: SimTime, max_events: Optional[int] = None
    ) -> StepSlice:
        """Cooperative, budget-bounded slice of :meth:`run_until`.

        Executes events with ``when <= deadline`` — at most ``max_events``
        of them — and returns a :class:`StepSlice`.  When the budget runs
        out first, the clock stays at the last executed event and a later
        call resumes exactly where this one stopped; once the queue is
        drained past ``deadline`` the clock is advanced there and ``done``
        is ``True``.

        Determinism contract: for any deadline and any (positive) budget
        sequence, repeating ``step_until(deadline, budget)`` until ``done``
        executes the *same events in the same order at the same virtual
        times* as a single ``run_until(deadline)``.  This is what lets an
        asyncio service interleave many ranges on one thread without
        perturbing any of them (see :mod:`repro.service`).
        """
        if deadline < self._now:
            raise SimulatorError(
                f"deadline {deadline} is before current time {self._now}"
            )
        if max_events is not None and max_events <= 0:
            raise SimulatorError(f"max_events must be positive, got {max_events}")
        executed = 0
        while True:
            head = self._peek()
            if head is None or head.when > deadline:
                self._now = deadline
                return StepSlice(executed, True)
            if max_events is not None and executed >= max_events:
                return StepSlice(executed, False)
            self.step()
            executed += 1

    def drain_current(self) -> int:
        """Execute every event scheduled at or before the current instant.

        Returns the number of events executed.  This is the *replay
        boundary* hook: after draining, the kernel state is exactly what a
        fresh run reaching ``run_until(now)`` would produce, so a mutation
        applied here (an injected action, an armed scenario) lands at a
        point a journal replay can reproduce — never in the middle of a
        budget-exhausted slice where some same-instant events are still
        queued.
        """
        return self.step_until(self._now).executed

    def digest(self) -> dict:
        """Cheap determinism fingerprint: ``{"now": µs, "processed": n}``.

        Two kernels that ran the same schedule agree on both numbers;
        journal progress marks embed this so a replay can verify it
        reconverged bit-for-bit with the live run it is restoring.
        """
        return {"now": self._now, "processed": self._processed}

    def run_to_completion(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely; returns events executed.

        Guarded by ``max_events`` because periodic tasks never complete —
        use :meth:`run_until` for ranges with periodic activity.
        """
        executed = 0
        while executed < max_events and self.step():
            executed += 1
        if executed >= max_events and self._peek() is not None:
            raise SimulatorError(f"exceeded max_events={max_events}; queue not idle")
        return executed

    def run_realtime(
        self,
        duration: SimTime,
        speed: float = 1.0,
        sleep: Callable[[float], None] = _wallclock.sleep,
    ) -> None:
        """Advance virtual time pacing against the wall clock.

        ``speed`` > 1 runs faster than real time; < 1 slower.  Used by the
        interactive CLI so HMI observers see second-level dynamics, matching
        the deployment mode of the paper's artifact.
        """
        if speed <= 0:
            raise SimulatorError(f"speed must be positive, got {speed}")
        deadline = self._now + int(duration)
        # sgml: lint-ok[det-wallclock] realtime pacing
        wall_start = _wallclock.monotonic()
        sim_start = self._now
        while self._now < deadline:
            head = self._peek()
            next_when = deadline if head is None else min(head.when, deadline)
            target_wall = wall_start + (next_when - sim_start) / SECOND / speed
            # sgml: lint-ok[det-wallclock] realtime pacing
            lag = target_wall - _wallclock.monotonic()
            if lag > 0:
                sleep(lag)
            self.run_until(next_when)

    def _peek(self) -> Optional[Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
