"""Discrete-event simulation kernel underpinning the cyber range.

Every component of the cyber range — the network emulator, virtual IEDs,
PLCs, the SCADA HMI and the power-flow co-simulation loop — runs on a single
:class:`Simulator`.  Virtual time is kept in integer microseconds so event
ordering is exact and runs are bit-for-bit reproducible, which the test suite
and the benchmark harness both rely on.

The paper's artifact runs on wall-clock time (Mininet + real processes); the
kernel optionally paces virtual time against the wall clock via
:meth:`Simulator.run_realtime` so interactive use behaves the same way.
"""

from repro.kernel.simulator import (
    MS,
    SECOND,
    US,
    Event,
    PeriodicTask,
    SimTime,
    Simulator,
    SimulatorError,
    StepSlice,
)

__all__ = [
    "Event",
    "MS",
    "PeriodicTask",
    "SECOND",
    "SimTime",
    "Simulator",
    "SimulatorError",
    "StepSlice",
    "US",
]
