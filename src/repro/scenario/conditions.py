"""Point-expression DSL for scenario trigger conditions.

A :class:`Condition` is a pure predicate over point-database values.  It
names the keys it depends on (:meth:`Condition.keys`) so a trigger can
subscribe to exactly those points' delta notifications — an idle condition
costs zero polling because nothing evaluates until one of its inputs
actually changes.

Conditions are built either programmatically::

    point("meas/TIE1/loading") > 80.0
    (point("meas/S1/vm_pu") < 0.95).with_hysteresis(0.02)
    is_false("status/CB_T1/closed")
    all_conditions(point("meas/TIE1/loading") > 80, is_true("status/CB_T1/closed"))

or parsed from the declarative spec syntax used by ``Scenario.from_spec``::

    parse_condition("meas/TIE1/loading > 80")
    parse_condition("not status/CB_T1/closed")

Hysteresis gives :class:`Comparison` conditions a re-arm band: after a
rising-edge fire, the trigger re-arms only once the value has left the band
(e.g. ``> 80`` with hysteresis ``5`` re-arms below ``75``), so a value
jittering around the threshold fires once, not once per tick.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from repro.pointdb.registry import parse_bool

#: Reads a current point value by key (bound to a registry by the trigger).
ReadFn = Callable[[str], Any]


def _spec_number(value: float) -> str:
    """Shortest spelling of ``value`` that parses back *exactly*.

    ``%g`` (used for display) truncates past 6 significant digits, which
    would make ``to_spec_str`` lossy; fall back to ``repr`` (guaranteed
    round-trip for python floats) whenever the compact form drifts.
    """
    compact = f"{value:g}"
    return compact if float(compact) == value else repr(value)


class ConditionError(ValueError):
    """Malformed condition expression or spec string."""


class Condition:
    """Abstract predicate over point values."""

    def keys(self) -> tuple[str, ...]:
        raise NotImplementedError

    def evaluate(self, read: ReadFn) -> bool:
        """Current truth value given a point reader."""
        raise NotImplementedError

    def to_spec_str(self) -> str:
        """The ``parse_condition`` spelling of this condition.

        Inverse of :func:`parse_condition`:
        ``parse_condition(c.to_spec_str())`` is equivalent to ``c``.
        Compound conditions (``&`` / ``|``) have no spec spelling and
        raise — they are python artifacts, not portable data.
        """
        raise ConditionError(
            f"{type(self).__name__} has no declarative spec spelling"
        )

    def rearm_ready(self, read: ReadFn) -> bool:
        """True once the value has exited the hysteresis band.

        A fired edge trigger may only re-arm when this holds; conditions
        without hysteresis re-arm as soon as they are false.
        """
        return not self.evaluate(read)

    def describe(self) -> str:
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return AllConditions((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return AnyCondition((self, other))


@dataclass(frozen=True)
class PointExpr:
    """A named point, waiting for a comparison operator."""

    key: str

    def __gt__(self, threshold: float) -> "Comparison":
        return Comparison(self.key, ">", float(threshold))

    def __ge__(self, threshold: float) -> "Comparison":
        return Comparison(self.key, ">=", float(threshold))

    def __lt__(self, threshold: float) -> "Comparison":
        return Comparison(self.key, "<", float(threshold))

    def __le__(self, threshold: float) -> "Comparison":
        return Comparison(self.key, "<=", float(threshold))

    def eq(self, threshold: float) -> "Comparison":
        return Comparison(self.key, "==", float(threshold))

    def ne(self, threshold: float) -> "Comparison":
        return Comparison(self.key, "!=", float(threshold))


def point(key: str) -> PointExpr:
    """Entry point of the DSL: ``point("meas/TIE1/loading") > 80``."""
    return PointExpr(key)


_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    "==": lambda v, t: v == t,
    "!=": lambda v, t: v != t,
}


@dataclass(frozen=True)
class Comparison(Condition):
    """``<key> <op> <threshold>`` over a float point, with a re-arm band."""

    key: str
    op: str
    threshold: float
    hysteresis: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConditionError(f"unknown comparison operator {self.op!r}")
        if self.hysteresis < 0:
            raise ConditionError("hysteresis must be non-negative")

    def with_hysteresis(self, band: float) -> "Comparison":
        return replace(self, hysteresis=float(band))

    def keys(self) -> tuple[str, ...]:
        return (self.key,)

    def _value(self, read: ReadFn) -> float:
        raw = read(self.key)
        try:
            return float(raw)
        except (TypeError, ValueError):
            return float("nan")

    def evaluate(self, read: ReadFn) -> bool:
        return _OPS[self.op](self._value(read), self.threshold)

    def rearm_ready(self, read: ReadFn) -> bool:
        value = self._value(read)
        band = self.hysteresis
        if self.op in (">", ">="):
            return value < self.threshold - band
        if self.op in ("<", "<="):
            return value > self.threshold + band
        if self.op == "==":
            return abs(value - self.threshold) > band
        return value == self.threshold  # "!=" re-arms at exact equality

    def describe(self) -> str:
        text = f"{self.key} {self.op} {self.threshold:g}"
        if self.hysteresis:
            text += f" (hysteresis {self.hysteresis:g})"
        return text

    def to_spec_str(self) -> str:
        """Band-free spec spelling; a hysteresis band is carried by the
        *trigger* spec (``{"when": ..., "hysteresis": ...}``), never by the
        condition string itself."""
        return f"{self.key} {self.op} {_spec_number(self.threshold)}"


@dataclass(frozen=True)
class BoolCondition(Condition):
    """Truthiness of a (usually boolean) point."""

    key: str
    expected: bool = True

    def keys(self) -> tuple[str, ...]:
        return (self.key,)

    def evaluate(self, read: ReadFn) -> bool:
        return parse_bool(read(self.key)) is self.expected

    def describe(self) -> str:
        return self.key if self.expected else f"not {self.key}"

    def to_spec_str(self) -> str:
        return self.key if self.expected else f"not {self.key}"


def is_true(key: str) -> BoolCondition:
    return BoolCondition(key, expected=True)


def is_false(key: str) -> BoolCondition:
    return BoolCondition(key, expected=False)


class _Compound(Condition):
    def __init__(self, children: Sequence[Condition]) -> None:
        if not children:
            raise ConditionError("compound condition needs at least one child")
        self.children = tuple(children)

    def keys(self) -> tuple[str, ...]:
        seen: list[str] = []
        for child in self.children:
            for key in child.keys():
                if key not in seen:
                    seen.append(key)
        return tuple(seen)


class AllConditions(_Compound):
    """True when every child condition holds."""

    def evaluate(self, read: ReadFn) -> bool:
        return all(child.evaluate(read) for child in self.children)

    def rearm_ready(self, read: ReadFn) -> bool:
        # An AND re-fires once every child is true again; one child having
        # cleanly exited its band is enough to consider the edge reset.
        return any(child.rearm_ready(read) for child in self.children)

    def describe(self) -> str:
        return "(" + " and ".join(c.describe() for c in self.children) + ")"


class AnyCondition(_Compound):
    """True when at least one child condition holds."""

    def evaluate(self, read: ReadFn) -> bool:
        return any(child.evaluate(read) for child in self.children)

    def rearm_ready(self, read: ReadFn) -> bool:
        # An OR only resets once every child has cleanly exited its band.
        return all(child.rearm_ready(read) for child in self.children)

    def describe(self) -> str:
        return "(" + " or ".join(c.describe() for c in self.children) + ")"


def all_conditions(*children: Condition) -> AllConditions:
    return AllConditions(children)


def any_condition(*children: Condition) -> AnyCondition:
    return AnyCondition(children)


def parse_condition(text: str) -> Condition:
    """Parse the spec syntax: ``<key> <op> <number>``, ``not <key>``, ``<key>``.

    Used by ``Scenario.from_spec`` so declarative scenario files can express
    trigger conditions and outcome checks as plain strings.
    """
    stripped = text.strip()
    if not stripped:
        raise ConditionError("empty condition")
    if stripped.lower().startswith("not "):
        key = stripped[4:].strip()
        if not key or " " in key:
            raise ConditionError(f"malformed negation {text!r}")
        return is_false(key)
    for op in ("<=", ">=", "==", "!=", "<", ">"):
        if op in stripped:
            key, _, value = stripped.partition(op)
            key = key.strip()
            value = value.strip()
            if not key or " " in key:
                raise ConditionError(f"malformed key in {text!r}")
            try:
                threshold = float(value)
            except ValueError:
                raise ConditionError(
                    f"threshold {value!r} in {text!r} is not a number"
                ) from None
            return Comparison(key, op, threshold)
    if " " in stripped:
        raise ConditionError(f"cannot parse condition {text!r}")
    return is_true(stripped)
