"""Event-driven scenario subsystem (experiments + training as data).

This package redesigns the scenario-facing API of the cyber range around
declarative **phases** armed by **triggers** and scored by **outcomes**,
replacing the timestamp-scripted :class:`~repro.attacks.exercise.
ExercisePlaybook` (now a thin compat shim over :meth:`Scenario.
from_playbook`):

* triggers — :func:`at`, :func:`when` (compiled to point-registry delta
  subscriptions: idle conditions cost zero polling and zero kernel
  events), :func:`after`, :func:`all_of` / :func:`any_of`;
* conditions — the :func:`point` expression DSL with edge/level and
  hysteresis semantics, plus a string syntax for declarative specs;
* actions — the attack primitives, HMI operator commands, point writes
  and observations behind one ``execute(cyber_range)`` interface;
* outcomes — named pass/fail checks producing structured per-phase
  records in the after-action report (:class:`ScenarioRun`).

Phases form an **outcome-conditioned graph**: ``on_pass`` / ``on_fail`` /
``on_timeout`` edges route to dormant branch-target phases (armed only
when routed to — untaken branches cost nothing), with ``timeout_s``
arming windows and ``max_visits``-bounded cycles.  The
:mod:`repro.scenario.catalog` families *generate* branched scenario specs
per model set, and :class:`Campaign` sweeps them (``sgml campaign``) into
one aggregate report.

Entry points: ``CyberRange.run_scenario(scenario, duration_s)``,
``Scenario.from_spec`` / ``to_spec`` (dict/YAML-shaped, wired to the
``sgml scenario`` CLI subcommand), ``Campaign.from_catalog`` /
``from_spec_dir``, and ``Scenario.from_playbook`` for legacy playbooks.
"""

from repro.scenario.actions import (
    Action,
    ActionError,
    CallAction,
    InjectBreakerAction,
    MitmSpoofAction,
    OperateAction,
    Outcome,
    RecordAction,
    WritePointAction,
    action_from_spec,
    outcome_from_spec,
)
from repro.scenario.conditions import (
    AllConditions,
    AnyCondition,
    BoolCondition,
    Comparison,
    Condition,
    ConditionError,
    PointExpr,
    all_conditions,
    any_condition,
    is_false,
    is_true,
    parse_condition,
    point,
)
from repro.scenario.campaign import (
    Campaign,
    CampaignError,
    CampaignReport,
    CampaignScenario,
)
from repro.scenario.engine import (
    ActionRecord,
    BranchRecord,
    OutcomeRecord,
    PhaseRecord,
    ScenarioRun,
    ScenarioRunError,
)
from repro.scenario.scenario import (
    Phase,
    Scenario,
    ScenarioError,
    find_back_edges,
    reachable_phases,
)
from repro.scenario.sharding import (
    MatrixReport,
    ShardedCampaign,
    aggregate_results,
    derive_seed,
    run_matrix,
    run_one,
)
from repro.scenario.triggers import (
    AfterTrigger,
    AllOfTrigger,
    AnyOfTrigger,
    AtTrigger,
    Trigger,
    TriggerError,
    WhenTrigger,
    after,
    all_of,
    any_of,
    at,
    when,
)

__all__ = [
    "Action",
    "ActionError",
    "ActionRecord",
    "AfterTrigger",
    "AllConditions",
    "AllOfTrigger",
    "AnyCondition",
    "AnyOfTrigger",
    "AtTrigger",
    "BoolCondition",
    "BranchRecord",
    "CallAction",
    "Campaign",
    "CampaignError",
    "CampaignReport",
    "CampaignScenario",
    "Comparison",
    "Condition",
    "ConditionError",
    "InjectBreakerAction",
    "MatrixReport",
    "MitmSpoofAction",
    "OperateAction",
    "Outcome",
    "OutcomeRecord",
    "Phase",
    "PhaseRecord",
    "PointExpr",
    "RecordAction",
    "Scenario",
    "ScenarioError",
    "ScenarioRun",
    "ScenarioRunError",
    "ShardedCampaign",
    "Trigger",
    "TriggerError",
    "WhenTrigger",
    "WritePointAction",
    "action_from_spec",
    "after",
    "aggregate_results",
    "all_conditions",
    "all_of",
    "any_condition",
    "any_of",
    "at",
    "derive_seed",
    "find_back_edges",
    "is_false",
    "is_true",
    "outcome_from_spec",
    "parse_condition",
    "point",
    "reachable_phases",
    "run_matrix",
    "run_one",
    "when",
]
