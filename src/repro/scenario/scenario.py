"""The declarative Scenario model: named phases, triggers, actions, outcomes.

A :class:`Scenario` replaces the timestamp-scripted playbook as the
first-class experiment/training artifact (the paper's "automated generation
of cybersecurity experiments and training").  Each :class:`Phase` is armed
by a trigger (:func:`~repro.scenario.triggers.at`, :func:`~repro.scenario.
triggers.when`, :func:`~repro.scenario.triggers.after`, ``all_of`` /
``any_of``) and carries an ordered list of actions plus optional scored
outcomes.

Construction styles:

* **Fluent python** — ``Scenario("drill").phase("strike", when("meas/TIE1/
  loading > 80")).action(...).outcome(...)``
* **Declarative spec** — :meth:`Scenario.from_spec` consumes a plain dict
  (JSON/YAML-shaped; the ``sgml scenario`` CLI subcommand loads such files),
  making scenarios portable data rather than code.
* **Playbook compat** — :meth:`Scenario.from_playbook` converts a legacy
  :class:`~repro.attacks.exercise.ExercisePlaybook` into one ``at()``-
  triggered phase per scripted action.  Actions sharing a timestamp keep
  their insertion order: the playbook sort is stable and the engine arms
  phases (and the kernel fires same-instant events) in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.scenario.actions import (
    Action,
    ActionFn,
    CallAction,
    Outcome,
    action_from_spec,
    outcome_from_spec,
)
from repro.scenario.conditions import Condition
from repro.scenario.engine import ScenarioRun
from repro.scenario.triggers import (
    AfterTrigger,
    AllOfTrigger,
    AnyOfTrigger,
    AtTrigger,
    Trigger,
    WhenTrigger,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.range import CyberRange


class ScenarioError(Exception):
    """Malformed scenario definition or spec."""


@dataclass
class Phase:
    """One named stage of a scenario."""

    name: str
    trigger: Trigger
    team: str = "red"
    actions: list[Action] = field(default_factory=list)
    outcomes: list[Outcome] = field(default_factory=list)

    # Fluent builders -------------------------------------------------
    def action(self, action: Union[Action, str], fn: Optional[ActionFn] = None) -> "Phase":
        """Append an action: either an :class:`Action` or ``(description, fn)``."""
        if isinstance(action, Action):
            if fn is not None:
                raise ScenarioError("pass either an Action or (description, fn)")
            self.actions.append(action)
        else:
            if fn is None:
                raise ScenarioError(
                    "string action description needs a callable: "
                    ".action('desc', fn)"
                )
            self.actions.append(CallAction(description=action, fn=fn))
        return self

    def outcome(
        self,
        name: str,
        check: Union[Condition, str, Any],
        after_s: float = 0.0,
    ) -> "Phase":
        """Append a scored pass/fail check evaluated ``after_s`` post-fire."""
        self.outcomes.append(Outcome(name=name, check=check, after_s=after_s))
        return self


class Scenario:
    """An ordered set of named phases — the experiment/training artifact."""

    def __init__(self, name: str = "scenario", description: str = "") -> None:
        self.name = name
        self.description = description
        self.phases: list[Phase] = []
        self._by_name: dict[str, Phase] = {}

    # ------------------------------------------------------------------
    def add(self, phase: Phase) -> Phase:
        if phase.name in self._by_name:
            raise ScenarioError(f"duplicate phase {phase.name!r}")
        self.phases.append(phase)
        self._by_name[phase.name] = phase
        return phase

    def phase(
        self,
        name: str,
        trigger: Union[Trigger, Condition, str, float, int],
        team: str = "red",
    ) -> Phase:
        """Create, register and return a phase (fluent entry point).

        ``trigger`` may be a :class:`Trigger`, a condition (object or spec
        string — wrapped in ``when()``), or a bare number (wrapped in
        ``at()``).
        """
        if isinstance(trigger, (int, float)):
            trigger = AtTrigger(float(trigger))
        elif isinstance(trigger, (Condition, str)):
            trigger = WhenTrigger(trigger)
        return self.add(Phase(name=name, trigger=trigger, team=team))

    def find_phase(self, name: str) -> Optional[Phase]:
        return self._by_name.get(name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, cyber_range: "CyberRange", duration_s: float) -> ScenarioRun:
        """Convenience wrapper around :meth:`CyberRange.run_scenario`."""
        return cyber_range.run_scenario(self, duration_s)

    # ------------------------------------------------------------------
    # Declarative spec
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: dict) -> "Scenario":
        """Build a scenario from a JSON/YAML-shaped dict.

        Shape::

            name: tie-overload-drill
            description: ...
            phases:
              - name: stress
                trigger: {at: 1.0}
                team: white
                actions:
                  - write_point: {key: cmd/Load_S2_1/scale, value: 3.0}
              - name: strike
                trigger: {when: "meas/TIE1/loading > 80", hysteresis: 5.0}
                actions:
                  - inject_breaker: {server_ip: 10.0.1.12, ied: S1IED2,
                                     switch: sw-S1LAN}
                outcomes:
                  - {name: tie tripped, check: "not status/CB_S1_TIE/closed",
                     after_s: 1.0}

        Trigger forms: ``{at: seconds}``, ``{when: "<cond>", mode?, repeat?,
        hysteresis?}``, ``{after: <phase>, delay?: seconds}``, ``{all_of:
        [trigger, ...]}``, ``{any_of: [trigger, ...]}``.
        """
        if not isinstance(spec, dict):
            raise ScenarioError(f"scenario spec must be a mapping, got {type(spec)}")
        scenario = cls(
            name=str(spec.get("name", "scenario")),
            description=str(spec.get("description", "")),
        )
        phases = spec.get("phases")
        if not isinstance(phases, list) or not phases:
            raise ScenarioError("scenario spec needs a non-empty 'phases' list")
        for index, phase_spec in enumerate(phases):
            if not isinstance(phase_spec, dict):
                raise ScenarioError(f"phase #{index} must be a mapping")
            name = phase_spec.get("name")
            if not name:
                raise ScenarioError(f"phase #{index} has no name")
            unknown = set(phase_spec) - {
                "name", "trigger", "team", "actions", "outcomes",
            }
            if unknown:
                raise ScenarioError(
                    f"phase {name!r} has unknown fields {sorted(unknown)}"
                )
            trigger_spec = phase_spec.get("trigger")
            if trigger_spec is None:
                raise ScenarioError(f"phase {name!r} has no trigger")
            phase = Phase(
                name=str(name),
                trigger=_trigger_from_spec(trigger_spec),
                team=str(phase_spec.get("team", "red")),
            )
            for action_spec in phase_spec.get("actions", []):
                phase.actions.append(action_from_spec(action_spec))
            for outcome_spec in phase_spec.get("outcomes", []):
                phase.outcomes.append(outcome_from_spec(outcome_spec))
            scenario.add(phase)
        return scenario

    # ------------------------------------------------------------------
    # Playbook compatibility
    # ------------------------------------------------------------------
    @classmethod
    def from_playbook(cls, playbook: Any) -> "Scenario":
        """Convert a legacy :class:`ExercisePlaybook` to a scenario.

        One ``at()``-triggered phase per scripted action.  The sort by
        ``time_s`` is *stable*, so actions scheduled at the same instant
        keep the order they were added to the playbook — e.g. a red strike
        added before a blue response at the same timestamp executes first.
        This ordering is part of the compat contract and covered by tests.
        """
        scenario = cls(name=playbook.name)
        ordered = sorted(playbook.actions, key=lambda a: a.time_s)
        for index, step in enumerate(ordered, start=1):
            phase = Phase(
                name=f"step{index}",
                trigger=AtTrigger(step.time_s),
                team=step.team,
            )
            phase.actions.append(
                CallAction(description=step.description, fn=step.execute)
            )
            scenario.add(phase)
        return scenario


#: Allowed companion keys per trigger form — a typo ('hysterisis') or two
#: competing forms in one mapping must fail loudly, not half-parse: the
#: spec is a portable training artifact.
_TRIGGER_FIELDS = {
    "at": {"at"},
    "when": {"when", "mode", "repeat", "hysteresis"},
    "after": {"after", "delay"},
    "all_of": {"all_of"},
    "any_of": {"any_of"},
}


def _trigger_from_spec(spec: Union[dict, float, int, str]) -> Trigger:
    """Parse one trigger spec value (strict: unknown keys are errors)."""
    if isinstance(spec, (int, float)):
        return AtTrigger(float(spec))
    if isinstance(spec, str):
        return WhenTrigger(spec)
    if not isinstance(spec, dict) or len(spec) < 1:
        raise ScenarioError(f"cannot parse trigger spec {spec!r}")
    forms = [form for form in _TRIGGER_FIELDS if form in spec]
    if len(forms) != 1:
        raise ScenarioError(
            f"trigger spec {spec!r} must use exactly one of "
            f"{sorted(_TRIGGER_FIELDS)}"
        )
    (form,) = forms
    unknown = set(spec) - _TRIGGER_FIELDS[form]
    if unknown:
        raise ScenarioError(
            f"trigger spec {spec!r} has unknown fields {sorted(unknown)}"
        )
    if form == "at":
        return AtTrigger(float(spec["at"]))
    if form == "when":
        return WhenTrigger(
            spec["when"],
            mode=str(spec.get("mode", "rising")),
            repeat=bool(spec.get("repeat", False)),
            hysteresis=(
                float(spec["hysteresis"]) if "hysteresis" in spec else None
            ),
        )
    if form == "after":
        return AfterTrigger(
            str(spec["after"]), delay_s=float(spec.get("delay", 0.0))
        )
    if form == "all_of":
        return AllOfTrigger([_trigger_from_spec(s) for s in spec["all_of"]])
    return AnyOfTrigger([_trigger_from_spec(s) for s in spec["any_of"]])
