"""The declarative Scenario model: named phases, triggers, actions, outcomes.

A :class:`Scenario` replaces the timestamp-scripted playbook as the
first-class experiment/training artifact (the paper's "automated generation
of cybersecurity experiments and training").  Each :class:`Phase` is armed
by a trigger (:func:`~repro.scenario.triggers.at`, :func:`~repro.scenario.
triggers.when`, :func:`~repro.scenario.triggers.after`, ``all_of`` /
``any_of``) and carries an ordered list of actions plus optional scored
outcomes.

Construction styles:

* **Fluent python** — ``Scenario("drill").phase("strike", when("meas/TIE1/
  loading > 80")).action(...).outcome(...)``
* **Declarative spec** — :meth:`Scenario.from_spec` consumes a plain dict
  (JSON/YAML-shaped; the ``sgml scenario`` CLI subcommand loads such files),
  making scenarios portable data rather than code.
* **Playbook compat** — :meth:`Scenario.from_playbook` converts a legacy
  :class:`~repro.attacks.exercise.ExercisePlaybook` into one ``at()``-
  triggered phase per scripted action.  Actions sharing a timestamp keep
  their insertion order: the playbook sort is stable and the engine arms
  phases (and the kernel fires same-instant events) in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional, Union

from repro.scenario.actions import (
    Action,
    ActionFn,
    CallAction,
    Outcome,
    action_from_spec,
    outcome_from_spec,
)
from repro.scenario.conditions import Condition
from repro.scenario.engine import ScenarioRun
from repro.scenario.triggers import (
    AfterTrigger,
    AllOfTrigger,
    AnyOfTrigger,
    AtTrigger,
    Trigger,
    WhenTrigger,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.range import CyberRange


class ScenarioError(Exception):
    """Malformed scenario definition or spec."""


@dataclass
class Phase:
    """One named stage of a scenario.

    Branch edges (``on_pass`` / ``on_fail`` / ``on_timeout``) turn the
    phase list into an **outcome-conditioned graph**: once this phase's
    outcomes are scored, the engine routes to the named phase.  A phase
    referenced by any edge starts *dormant* — its trigger is not armed
    (and costs nothing, not even a registry subscription) until an edge
    routes to it.  ``timeout_s`` bounds the arming window: if the trigger
    has not fired that many seconds after arming, the phase is disarmed
    and the ``on_timeout`` edge (if any) is taken.  ``max_visits`` bounds
    how many times routing may (re-)arm the phase, so cyclic graphs
    (retry loops) always terminate.
    """

    name: str
    trigger: Trigger
    team: str = "red"
    actions: list[Action] = field(default_factory=list)
    outcomes: list[Outcome] = field(default_factory=list)
    on_pass: str = ""
    on_fail: str = ""
    on_timeout: str = ""
    timeout_s: Optional[float] = None
    max_visits: int = 1

    @property
    def edges(self) -> dict[str, str]:
        """Non-empty branch edges: ``{"on_pass": target, ...}``."""
        return {
            edge: target
            for edge, target in (
                ("on_pass", self.on_pass),
                ("on_fail", self.on_fail),
                ("on_timeout", self.on_timeout),
            )
            if target
        }

    # Fluent builders -------------------------------------------------
    def action(self, action: Union[Action, str], fn: Optional[ActionFn] = None) -> "Phase":
        """Append an action: either an :class:`Action` or ``(description, fn)``."""
        if isinstance(action, Action):
            if fn is not None:
                raise ScenarioError("pass either an Action or (description, fn)")
            self.actions.append(action)
        else:
            if fn is None:
                raise ScenarioError(
                    "string action description needs a callable: "
                    ".action('desc', fn)"
                )
            self.actions.append(CallAction(description=action, fn=fn))
        return self

    def outcome(
        self,
        name: str,
        check: Union[Condition, str, Any],
        after_s: float = 0.0,
    ) -> "Phase":
        """Append a scored pass/fail check evaluated ``after_s`` post-fire."""
        self.outcomes.append(Outcome(name=name, check=check, after_s=after_s))
        return self

    def gate(
        self,
        name: str,
        check: Union[Condition, str, Any],
        after_s: float = 0.0,
    ) -> "Phase":
        """Append a *gating* outcome: routes branches, excluded from the
        run verdict (see :class:`~repro.scenario.actions.Outcome`)."""
        self.outcomes.append(
            Outcome(name=name, check=check, after_s=after_s, gate=True)
        )
        return self

    def branch(
        self,
        on_pass: Optional[str] = None,
        on_fail: Optional[str] = None,
        on_timeout: Optional[str] = None,
        timeout_s: Optional[float] = None,
        max_visits: Optional[int] = None,
    ) -> "Phase":
        """Set branch edges / bounds (fluent; only given fields change)."""
        if on_pass is not None:
            self.on_pass = on_pass
        if on_fail is not None:
            self.on_fail = on_fail
        if on_timeout is not None:
            self.on_timeout = on_timeout
        if timeout_s is not None:
            if timeout_s <= 0:
                raise ScenarioError(
                    f"phase {self.name!r}: timeout_s must be > 0"
                )
            self.timeout_s = float(timeout_s)
        if max_visits is not None:
            if not isinstance(max_visits, int) or max_visits < 1:
                raise ScenarioError(
                    f"phase {self.name!r}: max_visits must be an int >= 1"
                )
            self.max_visits = max_visits
        return self


class Scenario:
    """An ordered set of named phases — the experiment/training artifact."""

    def __init__(
        self,
        name: str = "scenario",
        description: str = "",
        duration_s: Optional[float] = None,
    ) -> None:
        self.name = name
        self.description = description
        #: Suggested run length (seconds); the spec's ``duration_s`` field.
        #: Runners fall back to their own default when unset.
        self.duration_s = duration_s
        self.phases: list[Phase] = []
        self._by_name: dict[str, Phase] = {}

    # ------------------------------------------------------------------
    def add(self, phase: Phase) -> Phase:
        if phase.name in self._by_name:
            raise ScenarioError(f"duplicate phase {phase.name!r}")
        self.phases.append(phase)
        self._by_name[phase.name] = phase
        return phase

    def phase(
        self,
        name: str,
        trigger: Union[Trigger, Condition, str, float, int],
        team: str = "red",
    ) -> Phase:
        """Create, register and return a phase (fluent entry point).

        ``trigger`` may be a :class:`Trigger`, a condition (object or spec
        string — wrapped in ``when()``), or a bare number (wrapped in
        ``at()``).
        """
        if isinstance(trigger, (int, float)):
            trigger = AtTrigger(float(trigger))
        elif isinstance(trigger, (Condition, str)):
            trigger = WhenTrigger(trigger)
        return self.add(Phase(name=name, trigger=trigger, team=team))

    def find_phase(self, name: str) -> Optional[Phase]:
        return self._by_name.get(name)

    # ------------------------------------------------------------------
    # Scenario graph (branch-on-outcome edges)
    # ------------------------------------------------------------------
    def branch_targets(self) -> set[str]:
        """Names of phases referenced by any branch edge (dormant at start)."""
        return {
            target
            for phase in self.phases
            for target in phase.edges.values()
        }

    def root_phases(self) -> list[Phase]:
        """Phases armed at scenario start (not referenced by any edge)."""
        targets = self.branch_targets()
        return [phase for phase in self.phases if phase.name not in targets]

    def validate_graph(self) -> list[str]:
        """Structural checks on the branch graph; returns problems.

        Cycles are *allowed* — every phase's ``max_visits`` is a finite
        bound, so total routing work is bounded by ``sum(max_visits)`` —
        but the graph must have at least one root (a phase no edge points
        at) or nothing would ever arm, and every edge must name a phase
        that exists.
        """
        problems: list[str] = []
        for phase in self.phases:
            for edge, target in phase.edges.items():
                if target not in self._by_name:
                    problems.append(
                        f"phase {phase.name!r}: {edge} references unknown "
                        f"phase {target!r}"
                    )
            if phase.on_timeout and phase.timeout_s is None:
                problems.append(
                    f"phase {phase.name!r}: on_timeout needs timeout_s"
                )
            if phase.timeout_s is not None and phase.timeout_s <= 0:
                problems.append(
                    f"phase {phase.name!r}: timeout_s must be > 0"
                )
            if phase.max_visits < 1:
                problems.append(
                    f"phase {phase.name!r}: max_visits must be >= 1"
                )
        if self.phases and not self.root_phases():
            problems.append(
                "scenario graph has no root phase (every phase is a branch "
                "target; nothing would ever arm)"
            )
        return problems

    def validate_graph_or_raise(self) -> "Scenario":
        problems = self.validate_graph()
        if problems:
            raise ScenarioError(
                f"invalid scenario graph: " + "; ".join(problems)
            )
        return self

    # ------------------------------------------------------------------
    # Graph introspection (static analysis beyond validate_graph)
    # ------------------------------------------------------------------
    def edge_map(self) -> dict[str, dict[str, str]]:
        """``{phase: {"on_pass": target, ...}}`` for every phase."""
        return {phase.name: phase.edges for phase in self.phases}

    def reachable_phases(self) -> set[str]:
        """Names of phases some execution can arm: the roots plus the
        transitive closure of branch edges from them."""
        return reachable_phases(
            [phase.name for phase in self.root_phases()], self.edge_map()
        )

    def unreachable_phases(self) -> list[str]:
        """Declared phases no execution can ever arm (declaration order).

        ``validate_graph`` accepts these — e.g. two phases referencing
        only each other pass the has-a-root check — but they are dead
        weight: no root routes into them.
        """
        reachable = self.reachable_phases()
        return [p.name for p in self.phases if p.name not in reachable]

    def back_edges(self) -> list[tuple[str, str, str]]:
        """Cycle-closing edges as ``(src, edge_kind, target)`` triples:
        every edge whose target can already reach its source."""
        return find_back_edges(self.edge_map())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, cyber_range: "CyberRange", duration_s: float) -> ScenarioRun:
        """Convenience wrapper around :meth:`CyberRange.run_scenario`."""
        return cyber_range.run_scenario(self, duration_s)

    # ------------------------------------------------------------------
    # Declarative spec
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: dict) -> "Scenario":
        """Build a scenario from a JSON/YAML-shaped dict.

        Shape::

            name: tie-overload-drill
            description: ...
            phases:
              - name: stress
                trigger: {at: 1.0}
                team: white
                actions:
                  - write_point: {key: cmd/Load_S2_1/scale, value: 3.0}
              - name: strike
                trigger: {when: "meas/TIE1/loading > 80", hysteresis: 5.0}
                actions:
                  - inject_breaker: {server_ip: 10.0.1.12, ied: S1IED2,
                                     switch: sw-S1LAN}
                outcomes:
                  - {name: tie tripped, check: "not status/CB_S1_TIE/closed",
                     after_s: 1.0}

        Trigger forms: ``{at: seconds}``, ``{when: "<cond>", mode?, repeat?,
        hysteresis?}``, ``{after: <phase>, delay?: seconds}``, ``{all_of:
        [trigger, ...]}``, ``{any_of: [trigger, ...]}``.

        Branch fields (the outcome-conditioned graph): ``on_pass`` /
        ``on_fail`` / ``on_timeout`` name the phase routed to once this
        phase's verdict resolves, ``timeout_s`` bounds the arming window,
        ``max_visits`` bounds re-arming (cycles are legal because every
        phase's visit count is finite).  The graph is validated before
        the scenario is returned.
        """
        if not isinstance(spec, dict):
            raise ScenarioError(f"scenario spec must be a mapping, got {type(spec)}")
        unknown_top = set(spec) - {"name", "description", "duration_s", "phases"}
        if unknown_top:
            raise ScenarioError(
                f"scenario spec has unknown fields {sorted(unknown_top)}"
            )
        scenario = cls(
            name=str(spec.get("name", "scenario")),
            description=str(spec.get("description", "")),
            duration_s=(
                float(spec["duration_s"])
                if spec.get("duration_s") is not None
                else None
            ),
        )
        phases = spec.get("phases")
        if not isinstance(phases, list) or not phases:
            raise ScenarioError("scenario spec needs a non-empty 'phases' list")
        for index, phase_spec in enumerate(phases):
            if not isinstance(phase_spec, dict):
                raise ScenarioError(f"phase #{index} must be a mapping")
            name = phase_spec.get("name")
            if not name:
                raise ScenarioError(f"phase #{index} has no name")
            unknown = set(phase_spec) - {
                "name", "trigger", "team", "actions", "outcomes",
                "on_pass", "on_fail", "on_timeout", "timeout_s", "max_visits",
            }
            if unknown:
                raise ScenarioError(
                    f"phase {name!r} has unknown fields {sorted(unknown)}"
                )
            trigger_spec = phase_spec.get("trigger")
            if trigger_spec is None:
                raise ScenarioError(f"phase {name!r} has no trigger")
            max_visits = phase_spec.get("max_visits", 1)
            if not isinstance(max_visits, int) or isinstance(max_visits, bool) \
                    or max_visits < 1:
                raise ScenarioError(
                    f"phase {name!r}: max_visits must be an int >= 1, "
                    f"got {max_visits!r}"
                )
            phase = Phase(
                name=str(name),
                trigger=_trigger_from_spec(trigger_spec),
                team=str(phase_spec.get("team", "red")),
                on_pass=str(phase_spec.get("on_pass", "")),
                on_fail=str(phase_spec.get("on_fail", "")),
                on_timeout=str(phase_spec.get("on_timeout", "")),
                timeout_s=(
                    float(phase_spec["timeout_s"])
                    if phase_spec.get("timeout_s") is not None
                    else None
                ),
                max_visits=max_visits,
            )
            for action_spec in phase_spec.get("actions", []):
                phase.actions.append(action_from_spec(action_spec))
            for outcome_spec in phase_spec.get("outcomes", []):
                phase.outcomes.append(outcome_from_spec(outcome_spec))
            scenario.add(phase)
        return scenario.validate_graph_or_raise()

    def to_spec(self) -> dict:
        """The declarative dict form of this scenario — the exact inverse
        of :meth:`from_spec` (``from_spec(s.to_spec())`` builds an
        equivalent scenario, and ``to_spec`` is a fixed point:
        ``from_spec(s.to_spec()).to_spec() == s.to_spec()``).

        Raises :class:`ScenarioError` when the scenario contains python
        artifacts with no spec spelling (``CallAction`` callables, compound
        ``&``/``|`` conditions, callable outcome checks) — those scenarios
        are code, not portable training data.
        """
        spec: dict = {"name": self.name}
        if self.description:
            spec["description"] = self.description
        if self.duration_s is not None:
            spec["duration_s"] = self.duration_s
        spec["phases"] = []
        for phase in self.phases:
            try:
                phase_spec = self._phase_to_spec(phase)
            except ScenarioError:
                raise
            except Exception as exc:
                raise ScenarioError(
                    f"phase {phase.name!r} is not spec-serializable: {exc}"
                ) from exc
            spec["phases"].append(phase_spec)
        return spec

    @staticmethod
    def _phase_to_spec(phase: Phase) -> dict:
        phase_spec: dict = {"name": phase.name, "trigger": phase.trigger.to_spec()}
        if phase.team != "red":
            phase_spec["team"] = phase.team
        if phase.actions:
            phase_spec["actions"] = [a.to_spec() for a in phase.actions]
        if phase.outcomes:
            phase_spec["outcomes"] = [o.to_spec() for o in phase.outcomes]
        for edge, target in phase.edges.items():
            phase_spec[edge] = target
        if phase.timeout_s is not None:
            phase_spec["timeout_s"] = phase.timeout_s
        if phase.max_visits != 1:
            phase_spec["max_visits"] = phase.max_visits
        return phase_spec

    # ------------------------------------------------------------------
    # Playbook compatibility
    # ------------------------------------------------------------------
    @classmethod
    def from_playbook(cls, playbook: Any) -> "Scenario":
        """Convert a legacy :class:`ExercisePlaybook` to a scenario.

        One ``at()``-triggered phase per scripted action.  The sort by
        ``time_s`` is *stable*, so actions scheduled at the same instant
        keep the order they were added to the playbook — e.g. a red strike
        added before a blue response at the same timestamp executes first.
        This ordering is part of the compat contract and covered by tests.
        """
        scenario = cls(name=playbook.name)
        ordered = sorted(playbook.actions, key=lambda a: a.time_s)
        for index, step in enumerate(ordered, start=1):
            phase = Phase(
                name=f"step{index}",
                trigger=AtTrigger(step.time_s),
                team=step.team,
            )
            phase.actions.append(
                CallAction(description=step.description, fn=step.execute)
            )
            scenario.add(phase)
        return scenario


#: Allowed companion keys per trigger form — a typo ('hysterisis') or two
#: competing forms in one mapping must fail loudly, not half-parse: the
#: spec is a portable training artifact.
_TRIGGER_FIELDS = {
    "at": {"at"},
    "when": {"when", "mode", "repeat", "hysteresis"},
    "after": {"after", "delay"},
    "all_of": {"all_of"},
    "any_of": {"any_of"},
}


def _trigger_from_spec(spec: Union[dict, float, int, str]) -> Trigger:
    """Parse one trigger spec value (strict: unknown keys are errors)."""
    if isinstance(spec, (int, float)):
        return AtTrigger(float(spec))
    if isinstance(spec, str):
        return WhenTrigger(spec)
    if not isinstance(spec, dict) or len(spec) < 1:
        raise ScenarioError(f"cannot parse trigger spec {spec!r}")
    forms = [form for form in _TRIGGER_FIELDS if form in spec]
    if len(forms) != 1:
        raise ScenarioError(
            f"trigger spec {spec!r} must use exactly one of "
            f"{sorted(_TRIGGER_FIELDS)}"
        )
    (form,) = forms
    unknown = set(spec) - _TRIGGER_FIELDS[form]
    if unknown:
        raise ScenarioError(
            f"trigger spec {spec!r} has unknown fields {sorted(unknown)}"
        )
    if form == "at":
        return AtTrigger(float(spec["at"]))
    if form == "when":
        return WhenTrigger(
            spec["when"],
            mode=str(spec.get("mode", "rising")),
            repeat=bool(spec.get("repeat", False)),
            hysteresis=(
                float(spec["hysteresis"]) if "hysteresis" in spec else None
            ),
        )
    if form == "after":
        return AfterTrigger(
            str(spec["after"]), delay_s=float(spec.get("delay", 0.0))
        )
    if form == "all_of":
        return AllOfTrigger([_trigger_from_spec(s) for s in spec["all_of"]])
    return AnyOfTrigger([_trigger_from_spec(s) for s in spec["any_of"]])


def reachable_phases(
    roots: Iterable[str], edges: dict[str, dict[str, str]]
) -> set[str]:
    """Transitive closure of ``edges`` from ``roots`` (module-level so the
    spec analyzer can run it over raw dicts that fail ``from_spec``)."""
    reachable: set[str] = set()
    frontier = list(roots)
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier.extend(edges.get(name, {}).values())
    return reachable


def find_back_edges(
    edges: dict[str, dict[str, str]]
) -> list[tuple[str, str, str]]:
    """Every cycle-closing edge ``(src, edge_kind, target)``: the target
    reaches the source through the graph, so taking the edge re-enters a
    phase already on the current path (bounded only by ``max_visits``)."""
    result: list[tuple[str, str, str]] = []
    for src, src_edges in edges.items():
        for kind, target in src_edges.items():
            if src in reachable_phases([target], edges):
                result.append((src, kind, target))
    return result
