"""Sharded campaigns: process-pool scenario sweeps + cross-model matrix.

Fresh-range campaign runs are fully independent simulators — every
scenario compiles its own :class:`~repro.range.CyberRange` from the same
model files — so a catalog sweep fans out across a
:class:`~concurrent.futures.ProcessPoolExecutor` without any shared
state.  This module is that fan-out layer:

* :func:`run_one` — the pure, picklable per-run unit.  Given a *model
  reference* (a model directory path, or an in-process
  :class:`~repro.sgml.modelset.SgmlModelSet`), a scenario spec dict and a
  seed, it compiles a fresh range, runs the scenario and returns the same
  per-run result dict :meth:`Campaign.run` produces serially.  Workers
  cache the parsed model set per directory (:data:`_MODEL_CACHE`), so a
  sweep pays one SCL parse per worker, not per scenario.
* :func:`derive_seed` — deterministic per-scenario seeds,
  ``seed_root + stable_hash(name)``.  The hash is SHA-256-based (never
  :func:`hash`, which is salted per process), so serial, sharded and
  cross-process runs of the same campaign all see identical seeds and —
  because the whole co-simulation is seed-deterministic — identical
  verdicts, branch paths and data-plane deltas.  A run is reproducible
  from its report alone: recompile the model with the recorded ``seed``
  and re-run the spec.
* :class:`ShardedCampaign` — the executor.  Bounded in-flight futures,
  per-run timeouts enforced *inside* the worker (``SIGALRM``, so a hung
  run becomes a structured failed result without poisoning the pool),
  crash capture (a worker that dies mid-run breaks the pool; the pool is
  rebuilt, innocent runs are retried, and the poison run is recorded as
  ``{"passed": false, "worker_crash": true}``), and order-independent
  aggregation (:func:`aggregate_results`: results sorted by member name,
  so the report is invariant to completion order).  ``workers=1`` falls
  back to the exact serial :meth:`Campaign.run` path.
* :func:`run_matrix` / :class:`MatrixReport` — the cross-model layer:
  one sweep over several model sets × catalog families
  (``sgml campaign --matrix epic,scaleout``), with a matrix-grouped
  aggregate report.

Determinism contract (pinned by ``tests/test_campaign_sharding.py`` and
the CI ``campaign-smoke`` differential): for the same campaign,
``workers=N`` and ``workers=1`` produce per-run results that are
identical field for field, wall-clock fields excluded.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.scenario.campaign import (
    Campaign,
    CampaignError,
    CampaignReport,
    CampaignScenario,
)
from repro.scenario.scenario import Scenario
from repro.sgml.modelset import SgmlModelSet

#: Result fields that carry wall-clock measurements — excluded from the
#: sharded-vs-serial differential (everything else must match exactly).
WALL_CLOCK_FIELDS = frozenset({"wall_s"})


def strip_wall_clock(result: dict) -> dict:
    """A copy of a per-run result with every wall-clock field removed.

    Drops the top-level :data:`WALL_CLOCK_FIELDS` and the wall-time
    counters nested in ``data_plane_delta`` (``tick_wall_s`` and every
    ``*_wall_s`` key) — the only fields allowed to differ between a
    serial and a sharded run of the same scenario.
    """
    cleaned = {
        key: value
        for key, value in result.items()
        if key not in WALL_CLOCK_FIELDS
    }
    delta = cleaned.get("data_plane_delta")
    if isinstance(delta, dict):
        cleaned["data_plane_delta"] = {
            key: value
            for key, value in delta.items()
            if not key.endswith("_wall_s")
        }
    return cleaned

#: Per-worker cache of parsed model sets, keyed by model directory.  One
#: SCL parse per (worker, model dir) instead of one per scenario; with the
#: default ``fork`` start method a model already parsed in the parent is
#: inherited for free.
_MODEL_CACHE: dict[str, SgmlModelSet] = {}

#: Env var gating the fault-injection hooks (``x_sharding_test`` spec
#: key) used by the pool fault-path tests.  Never honored unless set.
TEST_HOOKS_ENV = "REPRO_SHARDING_TEST_HOOKS"

#: Spec key carrying a fault-injection hook (test-only, env-gated).
TEST_HOOK_KEY = "x_sharding_test"


def stable_hash(name: str) -> int:
    """A process-stable 32-bit hash of ``name`` (SHA-256 prefix).

    :func:`hash` is salted per interpreter, so it would break the
    serial == sharded seed contract; this never changes across processes,
    platforms or Python versions.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def derive_seed(seed_root: int, name: str) -> int:
    """The deterministic per-scenario seed: ``seed_root + stable_hash(name)``.

    Every fresh-range campaign run — dry or live, serial or sharded —
    records this value as ``result["seed"]``, making any run reproducible
    from the report alone.
    """
    return int(seed_root) + stable_hash(name)


def _resolve_model(model_ref: Union[str, SgmlModelSet]) -> SgmlModelSet:
    """Parse (and per-worker cache) a model reference."""
    if isinstance(model_ref, SgmlModelSet):
        return model_ref
    model = _MODEL_CACHE.get(model_ref)
    if model is None:
        model = SgmlModelSet.from_directory(model_ref)
        _MODEL_CACHE[model_ref] = model
    return model


class _RunTimeout(Exception):
    """Raised inside a worker when a run exceeds its timeout budget."""


def _apply_test_hook(hook: dict) -> None:
    """Fault injection for the pool tests (env-gated; see TEST_HOOKS_ENV)."""
    if "sleep_s" in hook:
        time.sleep(float(hook["sleep_s"]))
    if hook.get("raise"):
        raise RuntimeError(str(hook["raise"]))
    if hook.get("kill"):
        import signal

        os.kill(os.getpid(), signal.SIGKILL)


def run_one(
    model_ref: Union[str, SgmlModelSet],
    spec: dict,
    seed: int,
    settle_s: float,
    duration_s: float,
    *,
    name: Optional[str] = None,
    source: str = "",
    timeout_s: Optional[float] = None,
) -> dict:
    """Execute one fresh-range scenario run; the picklable sweep unit.

    ``duration_s`` is the campaign default — a spec carrying its own
    ``duration_s`` wins, exactly as in the serial path.  Never raises:
    any failure (parse, compile, run, timeout) comes back as a structured
    ``{"passed": False, "error": ...}`` result so one bad spec cannot
    sink a sweep.  ``timeout_s`` is enforced with ``SIGALRM`` (worker
    processes run jobs on their main thread); on platforms without it the
    timeout is best-effort skipped.
    """
    result: dict = {
        "name": name if name is not None else str(spec.get("name", "scenario")),
        "source": source,
        "seed": int(seed),
    }
    # sgml: lint-ok[det-wallclock] wall accounting
    wall_start = time.perf_counter()
    timer_armed = False
    try:
        if timeout_s is not None and hasattr(__import__("signal"), "SIGALRM"):
            import signal

            def _on_alarm(signum, frame):
                raise _RunTimeout()

            signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
            timer_armed = True
        if TEST_HOOK_KEY in spec and (
            os.environ.get(TEST_HOOKS_ENV, "") not in ("", "0")
        ):
            hook = spec[TEST_HOOK_KEY]
            spec = {k: v for k, v in spec.items() if k != TEST_HOOK_KEY}
            _apply_test_hook(hook)
        # (without the env var the marker key stays in the spec and is
        # rejected by Scenario.from_spec like any unknown field)
        from repro.sgml.processor import SgmlProcessor

        scenario = Scenario.from_spec(spec)
        model = _resolve_model(model_ref)
        cyber_range = SgmlProcessor(model, seed=int(seed)).compile()
        run_duration_s = (
            scenario.duration_s if scenario.duration_s else duration_s
        )
        stats_before = cyber_range.data_plane_stats()
        run = cyber_range.run_scenario(
            scenario, run_duration_s, settle_s=settle_s
        )
        stats_after = cyber_range.data_plane_stats()
        result.update(run.to_dict())
        result["name"] = (
            name if name is not None else result["name"]
        )  # provenance beats spec name
        result["seed"] = int(seed)
        result["branch_path"] = run.branch_path()
        result["data_plane_delta"] = {
            key: stats_after[key] - stats_before.get(key, 0)
            for key in stats_after
            if isinstance(stats_after[key], (int, float))
        }
        cyber_range.close()
    except _RunTimeout:
        result["passed"] = False
        result["error"] = f"per-run timeout after {timeout_s:g}s"
        result["timed_out"] = True
    except Exception as exc:
        result["passed"] = False
        result["error"] = str(exc)
    finally:
        if timer_armed:
            import signal

            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, signal.SIG_DFL)
    # sgml: lint-ok[det-wallclock] wall accounting
    result["wall_s"] = time.perf_counter() - wall_start
    return result


def worker_crash_result(name: str, source: str, seed: int) -> dict:
    """The structured result recorded when a worker died mid-run."""
    return {
        "name": name,
        "source": source,
        "seed": int(seed),
        "passed": False,
        "error": "worker process died mid-run",
        "worker_crash": True,
        "wall_s": 0.0,
    }


def aggregate_results(
    results: list[dict],
    *,
    model: str,
    workers: int,
    wall_s: float,
    reuse_range: bool = False,
) -> CampaignReport:
    """Merge per-run results into a :class:`CampaignReport`.

    Order-independent by construction: results are sorted by member name,
    so any completion order — serial, sharded, shuffled — aggregates to
    the same report (pinned by the property test in
    ``tests/test_campaign_sharding.py``).
    """
    ordered = sorted(results, key=lambda r: str(r.get("name", "")))
    per_run_wall_s = sum(float(r.get("wall_s", 0.0)) for r in ordered)
    report = CampaignReport(
        model=model,
        dry_run=False,
        reuse_range=reuse_range,
        results=ordered,
        wall_s=wall_s,
        workers=int(workers),
        per_run_wall_s=per_run_wall_s,
        scenarios_per_minute=(
            60.0 * len(ordered) / wall_s if wall_s > 0 else 0.0
        ),
    )
    return report


class ShardedCampaign:
    """Fan a fresh-range :class:`Campaign` across a process pool.

    ``workers=1`` (or campaigns in ``reuse_range`` mode, which are
    inherently sequential) takes the exact serial :meth:`Campaign.run`
    path; the report is then re-aggregated through
    :func:`aggregate_results` so serial and sharded reports share one
    shape (name-sorted results + ``workers``/throughput fields).
    """

    def __init__(
        self,
        campaign: Campaign,
        *,
        workers: Optional[int] = None,
        per_run_timeout_s: Optional[float] = None,
        max_inflight: Optional[int] = None,
    ) -> None:
        self.campaign = campaign
        self.workers = max(1, int(workers if workers else os.cpu_count() or 1))
        self.per_run_timeout_s = per_run_timeout_s
        #: Bounded in-flight futures: never more than this many runs
        #: submitted at once, so a huge catalog cannot flood the pool's
        #: call queue with pickled specs.
        self.max_inflight = max(
            self.workers, int(max_inflight or 2 * self.workers)
        )

    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        campaign = self.campaign
        if self.workers == 1 or campaign.reuse_range:
            if campaign.reuse_range and self.workers > 1:
                raise CampaignError(
                    "reuse_range campaigns are sequential by design; "
                    "run with workers=1 (or drop reuse_range to shard)"
                )
            # sgml: lint-ok[det-wallclock] wall accounting
            start = time.perf_counter()
            serial = campaign.run()
            return aggregate_results(
                serial.results,
                model=serial.model,
                workers=1,
                # sgml: lint-ok[det-wallclock] wall accounting
                wall_s=time.perf_counter() - start,
                reuse_range=serial.reuse_range,
            )
        model_ref = campaign.model.source_dir
        if not model_ref:
            raise CampaignError(
                "sharded campaigns need a model directory to ship to "
                "workers (SgmlModelSet.source_dir is empty); "
                "use workers=1 for in-memory model sets"
            )
        # sgml: lint-ok[det-wallclock] wall accounting
        start = time.perf_counter()
        results = self._run_pool(model_ref, campaign.scenarios)
        return aggregate_results(
            results,
            model=campaign._model_name(),
            workers=self.workers,
            # sgml: lint-ok[det-wallclock] wall accounting
            wall_s=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _submit(self, executor, member: CampaignScenario):
        campaign = self.campaign
        return executor.submit(
            run_one,
            campaign.model.source_dir,
            member.spec,
            derive_seed(campaign.seed, member.name),
            campaign.settle_s,
            campaign.default_duration_s,
            name=member.name,
            source=member.source,
            timeout_s=self.per_run_timeout_s,
        )

    def _make_executor(self) -> ProcessPoolExecutor:
        import multiprocessing

        kwargs = {}
        if "fork" in multiprocessing.get_all_start_methods():
            # fork inherits the parsed-model cache and imported modules;
            # spawn workers would re-import repro per pool.
            kwargs["mp_context"] = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=self.workers, **kwargs)

    def _run_pool(
        self, model_ref: str, members: list[CampaignScenario]
    ) -> list[dict]:
        """Bounded-submission pool loop with crash capture.

        A worker dying (SIGKILL, hard crash) breaks the whole
        ``ProcessPoolExecutor``: every outstanding future raises
        ``BrokenProcessPool`` and the guilty member is indistinguishable
        from queued innocents.  Every member outstanding at the break is
        re-run *quarantined* — alone, in its own single-worker pool — so
        the crash attributes unambiguously: the poison member becomes a
        structured ``worker_crash`` result, innocents complete normally
        (runs are pure and seed-deterministic, so a re-run is exact).
        Total results always equal total members.
        """
        results: list[dict] = []
        pending = list(members)
        executor = self._make_executor()
        inflight: dict = {}
        try:
            while pending or inflight:
                while pending and len(inflight) < self.max_inflight:
                    member = pending.pop(0)
                    inflight[self._submit(executor, member)] = member
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                pool_broken = False
                suspects: list[CampaignScenario] = []
                for future in done:
                    member = inflight.pop(future)
                    exc = future.exception()
                    if exc is None:
                        results.append(future.result())
                        continue
                    if self._is_pool_break(exc):
                        pool_broken = True
                        suspects.append(member)
                    else:  # pragma: no cover - run_one never raises
                        results.append(
                            {
                                "name": member.name,
                                "source": member.source,
                                "seed": derive_seed(
                                    self.campaign.seed, member.name
                                ),
                                "passed": False,
                                "error": str(exc),
                                "wall_s": 0.0,
                            }
                        )
                if pool_broken:
                    # Everything still in flight died with the pool.
                    suspects.extend(inflight.values())
                    inflight.clear()
                    executor.shutdown(wait=True, cancel_futures=True)
                    for member in suspects:
                        results.append(self._run_quarantined(member))
                    executor = self._make_executor()
        finally:
            # Wait for worker teardown: an abandoned pool races
            # interpreter exit (atexit wakeup on a closed pipe).
            executor.shutdown(wait=True, cancel_futures=True)
        return results

    def _run_quarantined(self, member: CampaignScenario) -> dict:
        """Re-run one pool-break suspect alone in a one-worker pool."""
        import multiprocessing

        kwargs = {}
        if "fork" in multiprocessing.get_all_start_methods():
            kwargs["mp_context"] = multiprocessing.get_context("fork")
        executor = ProcessPoolExecutor(max_workers=1, **kwargs)
        try:
            future = self._submit(executor, member)
            exc = future.exception()
            if exc is None:
                return future.result()
            if self._is_pool_break(exc):
                return worker_crash_result(
                    member.name,
                    member.source,
                    derive_seed(self.campaign.seed, member.name),
                )
            raise exc  # pragma: no cover - run_one never raises
        finally:
            executor.shutdown(wait=True, cancel_futures=True)

    @staticmethod
    def _is_pool_break(exc: BaseException) -> bool:
        from concurrent.futures.process import BrokenProcessPool

        return isinstance(exc, (BrokenProcessPool, OSError))


# ---------------------------------------------------------------------------
# Cross-model matrix
# ---------------------------------------------------------------------------


@dataclass
class MatrixReport:
    """Aggregate of one sharded sweep per model set (the matrix layer)."""

    workers: int
    reports: list[dict] = field(default_factory=list)  # {"model_set", "report"}
    wall_s: float = 0.0

    @property
    def passed(self) -> bool:
        return bool(self.reports) and all(
            entry["report"]["passed"] for entry in self.reports
        )

    @property
    def scenario_count(self) -> int:
        return sum(e["report"]["scenario_count"] for e in self.reports)

    @property
    def scenarios_per_minute(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return 60.0 * self.scenario_count / self.wall_s

    def to_dict(self) -> dict:
        return {
            "matrix": True,
            "workers": self.workers,
            "passed": self.passed,
            "model_sets": [e["model_set"] for e in self.reports],
            "scenario_count": self.scenario_count,
            "wall_s": self.wall_s,
            "scenarios_per_minute": self.scenarios_per_minute,
            "reports": self.reports,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MatrixReport":
        return cls(
            workers=int(payload["workers"]),
            reports=[dict(entry) for entry in payload["reports"]],
            wall_s=float(payload["wall_s"]),
        )

    def write_json(self, path: str) -> str:
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
        return path

    def summary(self) -> str:
        lines = [
            f"=== matrix report: {len(self.reports)} model sets, "
            f"{self.workers} workers ==="
        ]
        for entry in self.reports:
            report = entry["report"]
            verdict = "PASS" if report["passed"] else "FAIL"
            lines.append(
                f"  [{verdict:>4}] {entry['model_set']}: "
                f"{report['passed_count']}/{report['scenario_count']} passed "
                f"({report['wall_s']:.2f}s wall)"
            )
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"=== matrix verdict: {verdict} ({self.scenario_count} scenarios, "
            f"{self.scenarios_per_minute:.1f}/min) ==="
        )
        return "\n".join(lines)


def run_matrix(
    model_sets: list[tuple[str, SgmlModelSet]],
    *,
    families: Optional[list[str]] = None,
    max_sites: int = 1,
    workers: Optional[int] = None,
    settle_s: float = 2.0,
    default_duration_s: float = 10.0,
    seed: int = 0,
    per_run_timeout_s: Optional[float] = None,
) -> MatrixReport:
    """One sweep over several model sets × catalog families.

    Each ``(label, model)`` pair generates its own catalog (``families``
    subset applies to all) and runs it through a :class:`ShardedCampaign`
    at the same worker count; the per-model reports are grouped into one
    :class:`MatrixReport`.  Per-scenario seeds derive from each
    campaign's members exactly as in a single sweep, so a matrix run of
    one model set equals that model set's standalone sharded sweep.
    """
    if not model_sets:
        raise CampaignError("matrix sweep has no model sets")
    matrix = MatrixReport(
        workers=max(1, int(workers if workers else os.cpu_count() or 1))
    )
    # sgml: lint-ok[det-wallclock] wall accounting
    start = time.perf_counter()
    for label, model in model_sets:
        campaign = Campaign.from_catalog(
            model,
            families=families,
            max_sites=max_sites,
            settle_s=settle_s,
            default_duration_s=default_duration_s,
            seed=seed,
        )
        report = ShardedCampaign(
            campaign,
            workers=matrix.workers,
            per_run_timeout_s=per_run_timeout_s,
        ).run()
        matrix.reports.append(
            {"model_set": label, "report": report.to_dict()}
        )
    # sgml: lint-ok[det-wallclock] wall accounting
    matrix.wall_s = time.perf_counter() - start
    return matrix


def differential(serial: list[dict], sharded: list[dict]) -> list[str]:
    """Field-for-field mismatches between two result lists (empty = equal).

    The determinism contract: serial and sharded runs of the same
    campaign differ only in wall-clock fields (see
    :func:`strip_wall_clock`).  Results are matched by member name;
    phase records nested under ``phases`` are compared whole (their
    timings are virtual, hence deterministic).
    """
    problems: list[str] = []
    by_name_a = {r["name"]: r for r in serial}
    by_name_b = {r["name"]: r for r in sharded}
    if sorted(by_name_a) != sorted(by_name_b):
        return [
            f"member sets differ: {sorted(by_name_a)} vs {sorted(by_name_b)}"
        ]
    for name in sorted(by_name_a):
        left = strip_wall_clock(by_name_a[name])
        right = strip_wall_clock(by_name_b[name])
        if set(left) != set(right):
            problems.append(
                f"{name}: field sets differ: "
                f"{sorted(set(left) ^ set(right))}"
            )
            continue
        for key in sorted(left):
            if left[key] != right[key]:
                problems.append(
                    f"{name}.{key}: {left[key]!r} != {right[key]!r}"
                )
    return problems
