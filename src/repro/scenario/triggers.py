"""Declarative phase triggers: when a scenario phase becomes live.

Triggers are *armed* against a running range by the scenario engine and
call back exactly once (unless ``repeat=True``) when their firing
condition is met:

* :func:`at` — a fixed virtual time offset from scenario start (the old
  playbook semantics).
* :func:`when` — a data-plane condition.  Compiled to
  ``PointDatabase.subscribe_handle`` delta callbacks: the condition is
  re-evaluated only when one of its input points actually changes value,
  so an idle condition costs **zero** kernel events and zero polling.
  Supports rising-edge (default) or level semantics plus a hysteresis
  re-arm band for repeatable triggers.
* :func:`after` — a delay from the completion of another phase (sequencing
  without wall-clock guessing).
* :func:`all_of` / :func:`any_of` — combinators over other triggers;
  conditions given to them are wrapped in :func:`when` automatically.

Arming a ``when`` trigger installs only registry subscriptions — no
simulator events.  The engine routes every fire through a scheduled
``scenario:*``-labelled event, so kernel per-label accounting shows
exactly how many events the scenario layer cost (and that an un-fired
trigger cost none).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, Sequence, Union

from repro.pointdb.registry import PointHandle
from repro.scenario.conditions import (
    Comparison,
    Condition,
    parse_condition,
)

FireFn = Callable[[str], None]
"""Engine callback: ``fire(reason)`` — the trigger has gone off."""


class TriggerError(Exception):
    """Trigger misuse (bad arming, unknown phase reference, ...)."""


class TriggerHost(Protocol):
    """What a trigger needs from the scenario engine to arm itself."""

    def schedule_at_s(
        self, time_s: float, callback: Callable[[], None], label: str
    ) -> Any: ...

    def schedule_in_s(
        self, delay_s: float, callback: Callable[[], None], label: str
    ) -> Any: ...

    def resolve_point(self, key: str) -> PointHandle: ...

    def read_point(self, key: str) -> Any: ...

    def read_handle(self, handle: PointHandle) -> Any: ...

    def subscribe_point(
        self, handle: PointHandle, callback: Callable[[PointHandle, Any], None]
    ) -> None: ...

    def unsubscribe_point(
        self, handle: PointHandle, callback: Callable[[PointHandle, Any], None]
    ) -> None: ...

    def on_phase_complete(
        self, phase_name: str, callback: Callable[[float], None]
    ) -> None: ...

    def trigger_label(self) -> str: ...


class Trigger:
    """Abstract trigger; subclasses implement :meth:`arm` / :meth:`disarm`."""

    repeat: bool = False

    def arm(self, host: TriggerHost, fire: FireFn) -> None:
        raise NotImplementedError

    def disarm(self) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def to_spec(self) -> Union[dict, float, str]:
        """The declarative spec form of this trigger (inverse of
        ``Scenario.from_spec``'s trigger parser).  Raises
        :class:`TriggerError` for triggers that are not expressible as
        portable data (e.g. compound python conditions)."""
        raise TriggerError(
            f"{type(self).__name__} has no declarative spec form"
        )


class AtTrigger(Trigger):
    """Fire at a fixed offset (seconds) from scenario start.

    A phase armed by *branch routing* (an ``on_pass``/``on_fail``/
    ``on_timeout`` edge) interprets the offset relative to the instant it
    was routed to, not scenario start — the engine supplies the epoch.
    """

    def __init__(self, time_s: float) -> None:
        if time_s < 0:
            raise TriggerError(f"at() time must be >= 0, got {time_s}")
        self.time_s = float(time_s)
        self._event = None

    def arm(self, host: TriggerHost, fire: FireFn) -> None:
        self._event = host.schedule_at_s(
            self.time_s,
            lambda: fire(f"t={self.time_s:g}s"),
            host.trigger_label(),
        )

    def disarm(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def describe(self) -> str:
        return f"at {self.time_s:g}s"

    def to_spec(self) -> dict:
        return {"at": self.time_s}


class WhenTrigger(Trigger):
    """Fire when a point condition becomes true (delta-subscription driven).

    State machine (``mode="rising"``, the default):

    * **armed** — waiting for a false→true transition of the condition.  If
      the condition is already true at arm time it does *not* fire; it must
      first exit the hysteresis band (become cleanly false) and rise again.
    * **fired** — the condition went true; ``fire()`` ran.  A one-shot
      trigger unsubscribes here.  A ``repeat`` trigger waits for
      :meth:`Condition.rearm_ready` (value out of the band) and re-arms.

    ``mode="level"`` fires immediately at arm time if the condition already
    holds; otherwise it behaves like rising mode for the first fire.

    Because evaluation happens inside registry delta callbacks, a value
    republished *unchanged* never reaches the trigger at all — that is the
    data plane's suppression guarantee, inherited here.
    """

    def __init__(
        self,
        condition: Union[Condition, str],
        mode: str = "rising",
        repeat: bool = False,
        hysteresis: Optional[float] = None,
    ) -> None:
        if isinstance(condition, str):
            condition = parse_condition(condition)
        if hysteresis is not None:
            if not isinstance(condition, Comparison):
                raise TriggerError(
                    "hysteresis applies to comparison conditions only"
                )
            condition = condition.with_hysteresis(hysteresis)
        if mode not in ("rising", "level"):
            raise TriggerError(f"mode must be 'rising' or 'level', got {mode!r}")
        self.condition = condition
        self.mode = mode
        self.repeat = repeat
        self._host: Optional[TriggerHost] = None
        self._fire: Optional[FireFn] = None
        self._handles: list[PointHandle] = []
        #: Handle-based reader bound at arm time: condition evaluation on
        #: the notification path must not re-hash point keys (PR 1).
        self._read: Optional[Callable[[str], Any]] = None
        self._subscribed = False
        #: True while waiting for the band exit before the next fire.
        self._blocked = False
        self.fire_count = 0

    # ------------------------------------------------------------------
    def arm(self, host: TriggerHost, fire: FireFn) -> None:
        self._host = host
        self._fire = fire
        by_key = {
            key: host.resolve_point(key) for key in self.condition.keys()
        }
        self._handles = list(by_key.values())
        self._read = lambda key: host.read_handle(by_key[key])
        for handle in self._handles:
            host.subscribe_point(handle, self._on_change)
        self._subscribed = True
        # Initial state: a level trigger fires right away when already true;
        # a rising trigger treats "already true" as blocked until the value
        # exits the band (no phantom edge at arm time).
        if self.condition.evaluate(self._read):
            if self.mode == "level":
                self._fired("level condition already true at arm")
            else:
                self._blocked = True

    def disarm(self) -> None:
        if self._subscribed and self._host is not None:
            for handle in self._handles:
                self._host.unsubscribe_point(handle, self._on_change)
        self._subscribed = False
        self._blocked = False

    # ------------------------------------------------------------------
    def _on_change(self, _handle: PointHandle, _value: Any) -> None:
        read = self._read
        if read is None or not self._subscribed:
            return
        if self._blocked:
            # Fired (or armed-high) — only a clean band exit re-arms.
            if self.condition.rearm_ready(read):
                self._blocked = False
            return
        if self.condition.evaluate(read):
            self._fired("condition became true")

    def _fired(self, reason: str) -> None:
        self.fire_count += 1
        if self.repeat:
            self._blocked = True
        fire = self._fire
        assert fire is not None
        if not self.repeat:
            self.disarm()
        fire(f"{self.condition.describe()}: {reason}")

    def describe(self) -> str:
        text = f"when {self.condition.describe()}"
        if self.mode != "rising":
            text += f" [{self.mode}]"
        if self.repeat:
            text += " [repeat]"
        return text

    def to_spec(self) -> dict:
        spec: dict = {"when": self.condition.to_spec_str()}
        if self.mode != "rising":
            spec["mode"] = self.mode
        if self.repeat:
            spec["repeat"] = True
        hysteresis = getattr(self.condition, "hysteresis", 0.0)
        if hysteresis:
            spec["hysteresis"] = hysteresis
        return spec


class AfterTrigger(Trigger):
    """Fire ``delay_s`` after another phase completes."""

    def __init__(self, phase: str, delay_s: float = 0.0) -> None:
        if delay_s < 0:
            raise TriggerError(f"after() delay must be >= 0, got {delay_s}")
        self.phase = phase
        self.delay_s = float(delay_s)
        self._event = None
        self._armed = False

    def arm(self, host: TriggerHost, fire: FireFn) -> None:
        self._armed = True
        # Captured now: by completion time the engine is no longer arming
        # this phase and the label would lose its ':<phase>' suffix.
        label = host.trigger_label()

        def on_complete(_completed_at_s: float) -> None:
            if not self._armed:
                return
            # The callback runs at the completion instant itself (or, for a
            # branch-routed phase whose reference already completed, at the
            # instant of routing) — a relative delay is exact in both cases.
            self._event = host.schedule_in_s(
                self.delay_s,
                lambda: fire(
                    f"{self.delay_s:g}s after phase {self.phase!r}"
                ),
                label,
            )

        host.on_phase_complete(self.phase, on_complete)

    def disarm(self) -> None:
        self._armed = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def describe(self) -> str:
        return f"{self.delay_s:g}s after {self.phase!r}"

    def to_spec(self) -> dict:
        spec: dict = {"after": self.phase}
        if self.delay_s:
            spec["delay"] = self.delay_s
        return spec


def _as_trigger(item: Union[Trigger, Condition, str]) -> Trigger:
    if isinstance(item, Trigger):
        return item
    return WhenTrigger(item)


class _Combinator(Trigger):
    def __init__(self, items: Sequence[Union[Trigger, Condition, str]]) -> None:
        if not items:
            raise TriggerError("combinator needs at least one child trigger")
        self.children = [_as_trigger(item) for item in items]
        self._fired_children: set[int] = set()
        self._fire: Optional[FireFn] = None
        self._done = False

    def disarm(self) -> None:
        for child in self.children:
            child.disarm()


class AllOfTrigger(_Combinator):
    """Fire once every child trigger has fired (a barrier)."""

    def arm(self, host: TriggerHost, fire: FireFn) -> None:
        self._fire = fire
        self._done = False
        self._fired_children.clear()
        for index, child in enumerate(self.children):
            child.arm(host, self._child_fired(index))

    def _child_fired(self, index: int) -> FireFn:
        def on_fire(_reason: str) -> None:
            if self._done:
                return
            self._fired_children.add(index)
            if len(self._fired_children) == len(self.children):
                self._done = True
                assert self._fire is not None
                self._fire("all child triggers fired")

        return on_fire

    def describe(self) -> str:
        return "all of (" + "; ".join(c.describe() for c in self.children) + ")"

    def to_spec(self) -> dict:
        return {"all_of": [child.to_spec() for child in self.children]}


class AnyOfTrigger(_Combinator):
    """Fire on the first child trigger; the rest are disarmed."""

    def arm(self, host: TriggerHost, fire: FireFn) -> None:
        self._fire = fire
        self._done = False
        self._fired_children.clear()
        for child in self.children:
            child.arm(host, self._child_fired(child))

    def _child_fired(self, fired_child: Trigger) -> FireFn:
        def on_fire(reason: str) -> None:
            if self._done:
                return
            self._done = True
            for child in self.children:
                if child is not fired_child:
                    child.disarm()
            assert self._fire is not None
            self._fire(reason)

        return on_fire

    def describe(self) -> str:
        return "any of (" + "; ".join(c.describe() for c in self.children) + ")"

    def to_spec(self) -> dict:
        return {"any_of": [child.to_spec() for child in self.children]}


# ---------------------------------------------------------------------------
# Public factory spelling (the API surface scenarios are written against)
# ---------------------------------------------------------------------------


def at(time_s: float) -> AtTrigger:
    """Trigger at a fixed scenario-time offset (seconds)."""
    return AtTrigger(time_s)


def when(
    condition: Union[Condition, str],
    mode: str = "rising",
    repeat: bool = False,
    hysteresis: Optional[float] = None,
) -> WhenTrigger:
    """Trigger on a data-plane condition (zero cost while idle)."""
    return WhenTrigger(condition, mode=mode, repeat=repeat, hysteresis=hysteresis)


def after(phase: str, delay_s: float = 0.0) -> AfterTrigger:
    """Trigger a delay after another phase completes."""
    return AfterTrigger(phase, delay_s)


def all_of(*items: Union[Trigger, Condition, str]) -> AllOfTrigger:
    return AllOfTrigger(items)


def any_of(*items: Union[Trigger, Condition, str]) -> AnyOfTrigger:
    return AnyOfTrigger(items)
