"""Scenario execution engine: arming, firing, scoring, reporting.

:class:`ScenarioRun` binds a declarative :class:`~repro.scenario.scenario.
Scenario` to a running :class:`~repro.range.CyberRange`:

* :meth:`ScenarioRun.start` arms every phase trigger.  ``at``/``after``
  triggers become ``scenario:*``-labelled simulator events; ``when``
  triggers become registry delta subscriptions and cost **no** simulator
  events until an input point changes — kernel per-label accounting is the
  audit trail for that claim.
* A trigger fire is routed through one ``scenario:<name>:<phase>`` event
  (``Simulator.call_soon``), so phase actions never run inside a registry
  flush and every data-plane write they make lands in the next batch.
* Actions execute in declaration order; an action that raises is recorded
  as ``FAILED: ...`` and the remaining actions still run (a failed attack
  step is a legitimate exercise outcome).
* Outcomes are scored ``after_s`` seconds past the phase's actions and
  recorded per phase; :attr:`ScenarioRun.passed` is the training verdict.

Determinism: phases are armed in declaration order and same-instant events
fire in scheduling order, so two phases triggered ``at`` the same virtual
time execute in the order the scenario declared them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.kernel import SECOND, Event
from repro.pointdb.registry import PointHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.range import CyberRange
    from repro.scenario.scenario import Phase, Scenario


class ScenarioRunError(Exception):
    """Engine misuse (double start, unknown phase reference, ...)."""


@dataclass
class ActionRecord:
    """One executed action, playbook-log compatible."""

    time_s: float
    team: str
    description: str
    result: str
    ok: bool
    phase: str


@dataclass
class OutcomeRecord:
    """One scored outcome check."""

    name: str
    status: str  # "pass" | "fail" | "pending"
    detail: str = ""
    time_s: Optional[float] = None
    #: Gating outcomes route branches but are excluded from the run verdict.
    gate: bool = False

    @property
    def passed(self) -> bool:
        return self.status == "pass"


@dataclass
class BranchRecord:
    """One branch-routing decision (taken or suppressed)."""

    time_s: float
    source: str
    edge: str  # "on_pass" | "on_fail" | "on_timeout"
    target: str
    armed: bool
    reason: str = ""  # why a suppressed edge was not taken

    def to_dict(self) -> dict:
        return vars(self).copy()


@dataclass
class PhaseRecord:
    """Structured per-phase timing + scoring for the after-action report.

    ``armed_at_s`` is ``None`` while the phase is dormant (a branch target
    no edge has routed to yet); ``visits`` counts how many times it was
    armed; ``verdict`` resolves to ``"pass"``/``"fail"`` once its outcomes
    score (or ``"timeout"`` if the arming window expired unfired).
    """

    name: str
    team: str
    trigger: str
    armed_at_s: Optional[float] = None
    triggered_at_s: Optional[float] = None
    completed_at_s: Optional[float] = None
    fire_count: int = 0
    visits: int = 0
    verdict: str = ""
    branch_taken: str = ""
    trigger_reason: str = ""
    actions: list[ActionRecord] = field(default_factory=list)
    outcomes: list[OutcomeRecord] = field(default_factory=list)

    @property
    def fired(self) -> bool:
        return self.triggered_at_s is not None

    @property
    def armed(self) -> bool:
        return self.armed_at_s is not None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "team": self.team,
            "trigger": self.trigger,
            "armed_at_s": self.armed_at_s,
            "triggered_at_s": self.triggered_at_s,
            "completed_at_s": self.completed_at_s,
            "fire_count": self.fire_count,
            "visits": self.visits,
            "verdict": self.verdict,
            "branch_taken": self.branch_taken,
            "trigger_reason": self.trigger_reason,
            "actions": [vars(a) for a in self.actions],
            "outcomes": [
                {
                    "name": o.name,
                    "status": o.status,
                    "detail": o.detail,
                    "time_s": o.time_s,
                    "gate": o.gate,
                }
                for o in self.outcomes
            ],
        }


class ScenarioRun:
    """One execution of a scenario against a cyber range.

    Also implements the :class:`~repro.scenario.triggers.TriggerHost`
    protocol triggers arm themselves against.
    """

    def __init__(self, scenario: "Scenario", cyber_range: "CyberRange") -> None:
        self.scenario = scenario
        self.cyber_range = cyber_range
        self.simulator = cyber_range.simulator
        self.pointdb = cyber_range.pointdb
        self.records: dict[str, PhaseRecord] = {}
        #: Chronological log across all phases (the after-action timeline).
        self.log: list[ActionRecord] = []
        #: Chronological branch-routing decisions (taken and suppressed).
        self.branches: list[BranchRecord] = []
        self.started = False
        self.finished = False
        self._base_us = 0
        #: Reference instant for schedule_at_s: scenario start, except
        #: during the (synchronous) arming of a branch-routed phase, where
        #: it is the routing instant — at(t) on a branch target means
        #: "t seconds after being routed to".
        self._epoch_us = 0
        self._completion_listeners: dict[str, list[Callable[[float], None]]] = {}
        self._arming_phase: Optional["Phase"] = None
        self._outcome_events: list[Event] = []
        #: Phases whose trigger is currently armed and unfired.
        self._armed: set[str] = set()
        #: Pending timeout events per armed phase name.
        self._timeout_events: dict[str, Event] = {}
        #: Live progress observer (service event broker); ``None`` costs
        #: one falsy check per emission point.
        self._observer: Optional[Callable[[dict], None]] = None
        #: Wall-clock run cost, frozen by :meth:`finish`.
        self.wall_s: float = 0.0
        self._wall_start: Optional[float] = None

    def set_observer(self, callback: Optional[Callable[[dict], None]]) -> None:
        """Stream structured progress events to ``callback`` as they happen.

        Events are dicts with an ``event`` key (``scenario_started``,
        ``phase_fired``, ``phase_verdict``, ``branch``,
        ``scenario_finished``) plus event-specific fields; the service
        layer fans them out to WebSocket subscribers.  An observer that
        raises would corrupt the run, so emission swallows exceptions.
        """
        self._observer = callback

    def _emit(self, event: str, **data: Any) -> None:
        if self._observer is None:
            return
        payload = {"event": event, "scenario": self.scenario.name, **data}
        try:
            self._observer(payload)
        except Exception:  # observer bugs must not perturb the run
            pass

    # ------------------------------------------------------------------
    # TriggerHost protocol
    # ------------------------------------------------------------------
    def schedule_at_s(
        self, time_s: float, callback: Callable[[], None], label: str
    ) -> Event:
        delay_us = self._epoch_us + int(time_s * SECOND) - self.simulator.now
        return self.simulator.schedule(max(0, delay_us), callback, label=label)

    def schedule_in_s(
        self, delay_s: float, callback: Callable[[], None], label: str
    ) -> Event:
        return self.simulator.schedule(
            max(0, int(delay_s * SECOND)), callback, label=label
        )

    def resolve_point(self, key: str) -> PointHandle:
        return self.pointdb.resolve(key)

    def read_point(self, key: str) -> Any:
        return self.pointdb.get(key)

    def read_handle(self, handle: PointHandle) -> Any:
        return self.pointdb.registry.read(handle)

    def subscribe_point(
        self, handle: PointHandle, callback: Callable[[PointHandle, Any], None]
    ) -> None:
        self.pointdb.subscribe_handle(handle, callback)

    def unsubscribe_point(
        self, handle: PointHandle, callback: Callable[[PointHandle, Any], None]
    ) -> None:
        self.pointdb.unsubscribe_handle(handle, callback)

    def on_phase_complete(
        self, phase_name: str, callback: Callable[[float], None]
    ) -> None:
        if phase_name not in self.records:
            raise ScenarioRunError(
                f"after() references unknown phase {phase_name!r}"
            )
        record = self.records[phase_name]
        if record.completed_at_s is not None:
            callback(record.completed_at_s)
            return
        self._completion_listeners.setdefault(phase_name, []).append(callback)

    def trigger_label(self) -> str:
        phase = self._arming_phase
        suffix = f":{phase.name}" if phase is not None else ""
        return f"scenario:{self.scenario.name}{suffix}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def elapsed_s(self) -> float:
        return (self.simulator.now - self._base_us) / SECOND

    def start(self) -> "ScenarioRun":
        """Arm every *root* phase trigger.  The range must be started.

        Branch-target phases (referenced by an ``on_pass``/``on_fail``/
        ``on_timeout`` edge) stay dormant: no simulator event, no registry
        subscription, until an edge routes to them — an untaken branch
        costs exactly nothing.
        """
        if self.started:
            raise ScenarioRunError("scenario run already started")
        problems = self.scenario.validate_graph()
        if problems:
            raise ScenarioRunError(
                "invalid scenario graph: " + "; ".join(problems)
            )
        self.started = True
        # sgml: lint-ok[det-wallclock] wall accounting
        self._wall_start = time.perf_counter()
        self._base_us = self.simulator.now
        self._epoch_us = self._base_us
        self._emit("scenario_started", time_s=0.0)
        # Records first: after() triggers may reference any phase, including
        # ones declared later (and dormant branch targets need records too).
        for phase in self.scenario.phases:
            self.records[phase.name] = PhaseRecord(
                name=phase.name,
                team=phase.team,
                trigger=phase.trigger.describe(),
            )
        try:
            for phase in self.scenario.root_phases():
                self._arm_phase(phase)
        except Exception:
            # A half-armed run must not leave live subscriptions behind:
            # an aborted scenario's phases would otherwise fire as
            # phantoms on the next matching data-plane change.
            for phase in self.scenario.phases:
                phase.trigger.disarm()
            self._armed.clear()
            raise
        return self

    # ------------------------------------------------------------------
    # Arming, timeouts, branch routing
    # ------------------------------------------------------------------
    def _arm_phase(self, phase: "Phase", routed: bool = False) -> None:
        """Arm one phase's trigger (at start, or via a branch edge)."""
        record = self.records[phase.name]
        record.visits += 1
        record.armed_at_s = self.elapsed_s()
        self._armed.add(phase.name)
        fires_before_arming = record.fire_count
        self._arming_phase = phase
        if routed:
            self._epoch_us = self.simulator.now
        try:
            phase.trigger.arm(self, self._make_fire(phase))
        finally:
            self._arming_phase = None
            self._epoch_us = self._base_us
        # The timeout is scheduled *after* the trigger so that, at an exact
        # tie (trigger due at the timeout instant), the kernel's FIFO order
        # runs the fire first and the fire cancels the timeout — and not at
        # all if arming itself fired the trigger (level mode).
        if (
            phase.timeout_s is not None
            and record.fire_count == fires_before_arming
        ):
            self._timeout_events[phase.name] = self.simulator.schedule(
                int(phase.timeout_s * SECOND),
                lambda: self._on_timeout(phase, fires_before_arming),
                label=f"scenario:{self.scenario.name}:{phase.name}:timeout",
            )

    def _cancel_timeout(self, phase_name: str) -> None:
        event = self._timeout_events.pop(phase_name, None)
        if event is not None:
            event.cancel()

    def _on_timeout(self, phase: "Phase", fires_before_arming: int) -> None:
        """The arming window expired before the trigger fired."""
        record = self.records[phase.name]
        self._timeout_events.pop(phase.name, None)
        if phase.name not in self._armed:
            return  # already fired and disarmed
        if record.fire_count != fires_before_arming:
            return  # fired during this visit (e.g. a repeat trigger)
        phase.trigger.disarm()
        self._armed.discard(phase.name)
        record.verdict = "timeout"
        self._emit(
            "phase_verdict",
            phase=phase.name,
            verdict="timeout",
            time_s=self.elapsed_s(),
        )
        if phase.on_timeout:
            self._route(phase, "on_timeout", phase.on_timeout)

    def _resolve_verdict(
        self, phase: "Phase", outcomes: list[OutcomeRecord]
    ) -> None:
        """All outcomes of one phase execution scored: route the branch.

        Gate outcomes count here (they exist to steer routing) even though
        they are excluded from the run-level verdict.
        """
        if self.finished:
            return
        record = self.records[phase.name]
        verdict = "pass" if all(o.passed for o in outcomes) else "fail"
        record.verdict = verdict
        self._emit(
            "phase_verdict",
            phase=phase.name,
            verdict=verdict,
            time_s=self.elapsed_s(),
        )
        edge = "on_pass" if verdict == "pass" else "on_fail"
        target = phase.edges.get(edge, "")
        if target:
            self._route(phase, edge, target)

    def _route(self, source: "Phase", edge: str, target_name: str) -> None:
        """Take one branch edge: arm the target unless bounded out."""
        target = self.scenario.find_phase(target_name)
        assert target is not None  # validate_graph checked at start
        target_record = self.records[target_name]
        reason = ""
        if target_name in self._armed:
            reason = "already armed"
        elif target_record.visits >= target.max_visits:
            reason = f"visit limit {target.max_visits} reached"
        decision = BranchRecord(
            time_s=self.elapsed_s(),
            source=source.name,
            edge=edge,
            target=target_name,
            armed=not reason,
            reason=reason,
        )
        self.branches.append(decision)
        self._emit(
            "branch",
            source=source.name,
            edge=edge,
            target=target_name,
            armed=decision.armed,
            time_s=decision.time_s,
        )
        source_record = self.records[source.name]
        if not source_record.branch_taken and decision.armed:
            source_record.branch_taken = f"{edge} -> {target_name}"
        if decision.armed:
            self._arm_phase(target, routed=True)

    def _make_fire(self, phase: "Phase") -> Callable[[str], None]:
        def fire(reason: str) -> None:
            record = self.records[phase.name]
            record.fire_count += 1
            if record.fire_count == 1:
                record.triggered_at_s = self.elapsed_s()
                record.trigger_reason = reason
            self._emit(
                "phase_fired",
                phase=phase.name,
                reason=reason,
                fire_count=record.fire_count,
                time_s=self.elapsed_s(),
            )
            self._cancel_timeout(phase.name)
            if not phase.trigger.repeat:
                self._armed.discard(phase.name)
            # Hop through one labelled event so actions never execute inside
            # a registry flush callback (and so the kernel accounts for them).
            self.simulator.call_soon(
                lambda: self._execute_phase(phase),
                label=f"scenario:{self.scenario.name}:{phase.name}",
            )

        return fire

    # ------------------------------------------------------------------
    def _execute_phase(self, phase: "Phase") -> None:
        record = self.records[phase.name]
        for action in phase.actions:
            try:
                outcome = action.execute(self.cyber_range)
                result = "ok" if outcome is None else str(outcome)
                ok = True
            except Exception as exc:  # after-action visibility, not a crash
                result = f"FAILED: {exc}"
                ok = False
            entry = ActionRecord(
                time_s=self.elapsed_s(),
                team=phase.team,
                description=action.description,
                result=result,
                ok=ok,
                phase=phase.name,
            )
            record.actions.append(entry)
            self.log.append(entry)
        # Outcome scoring for *this* execution: the phase's verdict (and
        # therefore its branch edge) resolves once the last of these
        # scores.  A phase with no outcomes resolves "pass" immediately.
        execution_outcomes: list[OutcomeRecord] = []
        pending = {"count": len(phase.outcomes)}

        def scored() -> None:
            pending["count"] -= 1
            if pending["count"] == 0:
                self._resolve_verdict(phase, execution_outcomes)

        for outcome in phase.outcomes:
            self._schedule_outcome(
                phase, record, outcome, execution_outcomes, scored
            )
        first_completion = record.completed_at_s is None
        record.completed_at_s = self.elapsed_s()
        if first_completion:
            for callback in self._completion_listeners.pop(phase.name, []):
                callback(record.completed_at_s)
        if not phase.outcomes:
            self._resolve_verdict(phase, execution_outcomes)

    def _schedule_outcome(
        self,
        phase: "Phase",
        record: PhaseRecord,
        outcome,
        execution_outcomes: list[OutcomeRecord],
        scored: Callable[[], None],
    ) -> None:
        outcome_record = OutcomeRecord(
            name=outcome.name, status="pending", gate=outcome.gate
        )
        record.outcomes.append(outcome_record)
        execution_outcomes.append(outcome_record)

        def score() -> None:
            passed, detail = outcome.evaluate(self.cyber_range)
            outcome_record.status = "pass" if passed else "fail"
            outcome_record.detail = detail
            outcome_record.time_s = self.elapsed_s()
            scored()

        if outcome.after_s <= 0:
            score()
        else:
            self._outcome_events.append(
                self.simulator.schedule(
                    int(outcome.after_s * SECOND),
                    score,
                    label=f"scenario:{self.scenario.name}:{phase.name}:outcome",
                )
            )

    # ------------------------------------------------------------------
    def finish(self) -> "ScenarioRun":
        """Disarm all triggers and freeze the report.

        Outcome checks still scheduled beyond this point are cancelled and
        stay ``pending`` — the verdict cannot mutate after the report is
        read, even if the same simulator keeps running.
        """
        if self.finished:
            return self
        self.finished = True
        if self._wall_start is not None:
            # sgml: lint-ok[det-wallclock] wall accounting
            self.wall_s = time.perf_counter() - self._wall_start
        for phase in self.scenario.phases:
            phase.trigger.disarm()
        self._armed.clear()
        for event in self._timeout_events.values():
            event.cancel()
        self._timeout_events.clear()
        for event in self._outcome_events:
            event.cancel()
        self._outcome_events.clear()
        self._emit(
            "scenario_finished", passed=self.passed, time_s=self.elapsed_s()
        )
        return self

    # ------------------------------------------------------------------
    # Verdict + reporting
    # ------------------------------------------------------------------
    @property
    def outcome_records(self) -> list[OutcomeRecord]:
        return [o for record in self.records.values() for o in record.outcomes]

    @property
    def passed(self) -> bool:
        """All scored non-gate outcomes pass and none are still pending.

        A scenario with no outcomes passes vacuously (pure exercises).
        Outcomes whose phase never fired were never scored and therefore
        do not appear — phases that were *expected* to fire should carry
        an outcome on a downstream (e.g. ``after``) phase to catch that.
        Gating outcomes steer branch routing but do not count here: an
        adaptive scenario is scored on the path it took.
        """
        outcomes = self.outcome_records
        return all(o.status == "pass" for o in outcomes if not o.gate)

    def branch_path(self) -> list[str]:
        """The taken edges, in order: ``["strike --on_fail--> escalate"]``."""
        return [
            f"{b.source} --{b.edge}--> {b.target}"
            for b in self.branches
            if b.armed
        ]

    def to_dict(self) -> dict:
        """Structured after-action report.

        ``wall_s`` (wall clock between :meth:`start` and :meth:`finish`)
        and ``seed`` (the compiled range's effective RNG seed) make this
        the same per-run schema the campaign aggregate report uses, so a
        service after-action report and a campaign entry are
        interchangeable.
        """
        return {
            "scenario": self.scenario.name,
            "description": self.scenario.description,
            "passed": self.passed,
            "duration_s": self.elapsed_s(),
            "wall_s": self.wall_s,
            "seed": getattr(self.cyber_range, "seed", 0),
            "branches": [b.to_dict() for b in self.branches],
            "phases": [
                self.records[phase.name].to_dict()
                for phase in self.scenario.phases
            ],
        }

    def after_action_report(self) -> str:
        """Human-readable structured report: per-phase timing + outcomes."""
        lines = [f"=== after-action report: {self.scenario.name} ==="]
        if self.scenario.description:
            lines.append(self.scenario.description)
        branch_targets = self.scenario.branch_targets()
        for phase in self.scenario.phases:
            record = self.records[phase.name]
            if record.fired:
                timing = (
                    f"fired at {record.triggered_at_s:8.3f}s"
                    f" ({record.trigger_reason})"
                )
                if record.fire_count > 1:
                    timing += f" x{record.fire_count}"
            elif record.verdict == "timeout":
                timing = "timed out unfired"
            elif not record.armed and phase.name in branch_targets:
                timing = "dormant (branch target, never routed to)"
            else:
                timing = "never fired"
            lines.append(f"-- phase {record.name!r} [{record.trigger}]: {timing}")
            if record.branch_taken:
                lines.append(f"   BRANCH {record.branch_taken}")
            for entry in record.actions:
                lines.append(
                    f"   [{entry.time_s:8.3f}s] ({entry.team:>5}) "
                    f"{entry.description} -> {entry.result}"
                )
            for outcome in record.outcomes:
                stamp = (
                    f"{outcome.time_s:8.3f}s" if outcome.time_s is not None
                    else "       -"
                )
                lines.append(
                    f"   [{stamp}] OUTCOME {outcome.name}"
                    + (" [gate]" if outcome.gate else "")
                    + f": {outcome.status.upper()}"
                    + (f" ({outcome.detail})" if outcome.detail else "")
                )
        path = self.branch_path()
        if path:
            lines.append("branch path: " + "; ".join(path))
        verdict = "PASS" if self.passed else "FAIL"
        scored = [o for o in self.outcome_records if not o.gate]
        lines.append(
            f"=== verdict: {verdict} "
            f"({sum(1 for o in scored if o.passed)}/{len(scored)} outcomes) ==="
        )
        return "\n".join(lines)
