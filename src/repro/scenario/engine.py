"""Scenario execution engine: arming, firing, scoring, reporting.

:class:`ScenarioRun` binds a declarative :class:`~repro.scenario.scenario.
Scenario` to a running :class:`~repro.range.CyberRange`:

* :meth:`ScenarioRun.start` arms every phase trigger.  ``at``/``after``
  triggers become ``scenario:*``-labelled simulator events; ``when``
  triggers become registry delta subscriptions and cost **no** simulator
  events until an input point changes — kernel per-label accounting is the
  audit trail for that claim.
* A trigger fire is routed through one ``scenario:<name>:<phase>`` event
  (``Simulator.call_soon``), so phase actions never run inside a registry
  flush and every data-plane write they make lands in the next batch.
* Actions execute in declaration order; an action that raises is recorded
  as ``FAILED: ...`` and the remaining actions still run (a failed attack
  step is a legitimate exercise outcome).
* Outcomes are scored ``after_s`` seconds past the phase's actions and
  recorded per phase; :attr:`ScenarioRun.passed` is the training verdict.

Determinism: phases are armed in declaration order and same-instant events
fire in scheduling order, so two phases triggered ``at`` the same virtual
time execute in the order the scenario declared them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.kernel import SECOND, Event
from repro.pointdb.registry import PointHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.range import CyberRange
    from repro.scenario.scenario import Phase, Scenario


class ScenarioRunError(Exception):
    """Engine misuse (double start, unknown phase reference, ...)."""


@dataclass
class ActionRecord:
    """One executed action, playbook-log compatible."""

    time_s: float
    team: str
    description: str
    result: str
    ok: bool
    phase: str


@dataclass
class OutcomeRecord:
    """One scored outcome check."""

    name: str
    status: str  # "pass" | "fail" | "pending"
    detail: str = ""
    time_s: Optional[float] = None

    @property
    def passed(self) -> bool:
        return self.status == "pass"


@dataclass
class PhaseRecord:
    """Structured per-phase timing + scoring for the after-action report."""

    name: str
    team: str
    trigger: str
    armed_at_s: float = 0.0
    triggered_at_s: Optional[float] = None
    completed_at_s: Optional[float] = None
    fire_count: int = 0
    trigger_reason: str = ""
    actions: list[ActionRecord] = field(default_factory=list)
    outcomes: list[OutcomeRecord] = field(default_factory=list)

    @property
    def fired(self) -> bool:
        return self.triggered_at_s is not None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "team": self.team,
            "trigger": self.trigger,
            "armed_at_s": self.armed_at_s,
            "triggered_at_s": self.triggered_at_s,
            "completed_at_s": self.completed_at_s,
            "fire_count": self.fire_count,
            "trigger_reason": self.trigger_reason,
            "actions": [vars(a) for a in self.actions],
            "outcomes": [
                {
                    "name": o.name,
                    "status": o.status,
                    "detail": o.detail,
                    "time_s": o.time_s,
                }
                for o in self.outcomes
            ],
        }


class ScenarioRun:
    """One execution of a scenario against a cyber range.

    Also implements the :class:`~repro.scenario.triggers.TriggerHost`
    protocol triggers arm themselves against.
    """

    def __init__(self, scenario: "Scenario", cyber_range: "CyberRange") -> None:
        self.scenario = scenario
        self.cyber_range = cyber_range
        self.simulator = cyber_range.simulator
        self.pointdb = cyber_range.pointdb
        self.records: dict[str, PhaseRecord] = {}
        #: Chronological log across all phases (the after-action timeline).
        self.log: list[ActionRecord] = []
        self.started = False
        self.finished = False
        self._base_us = 0
        self._completion_listeners: dict[str, list[Callable[[float], None]]] = {}
        self._arming_phase: Optional["Phase"] = None
        self._outcome_events: list[Event] = []

    # ------------------------------------------------------------------
    # TriggerHost protocol
    # ------------------------------------------------------------------
    def schedule_at_s(
        self, time_s: float, callback: Callable[[], None], label: str
    ) -> Event:
        delay_us = self._base_us + int(time_s * SECOND) - self.simulator.now
        return self.simulator.schedule(max(0, delay_us), callback, label=label)

    def resolve_point(self, key: str) -> PointHandle:
        return self.pointdb.resolve(key)

    def read_point(self, key: str) -> Any:
        return self.pointdb.get(key)

    def read_handle(self, handle: PointHandle) -> Any:
        return self.pointdb.registry.read(handle)

    def subscribe_point(
        self, handle: PointHandle, callback: Callable[[PointHandle, Any], None]
    ) -> None:
        self.pointdb.subscribe_handle(handle, callback)

    def unsubscribe_point(
        self, handle: PointHandle, callback: Callable[[PointHandle, Any], None]
    ) -> None:
        self.pointdb.unsubscribe_handle(handle, callback)

    def on_phase_complete(
        self, phase_name: str, callback: Callable[[float], None]
    ) -> None:
        if phase_name not in self.records:
            raise ScenarioRunError(
                f"after() references unknown phase {phase_name!r}"
            )
        record = self.records[phase_name]
        if record.completed_at_s is not None:
            callback(record.completed_at_s)
            return
        self._completion_listeners.setdefault(phase_name, []).append(callback)

    def trigger_label(self) -> str:
        phase = self._arming_phase
        suffix = f":{phase.name}" if phase is not None else ""
        return f"scenario:{self.scenario.name}{suffix}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def elapsed_s(self) -> float:
        return (self.simulator.now - self._base_us) / SECOND

    def start(self) -> "ScenarioRun":
        """Arm every phase trigger.  The range must be started."""
        if self.started:
            raise ScenarioRunError("scenario run already started")
        self.started = True
        self._base_us = self.simulator.now
        # Records first: after() triggers may reference any phase, including
        # ones declared later.
        for phase in self.scenario.phases:
            self.records[phase.name] = PhaseRecord(
                name=phase.name,
                team=phase.team,
                trigger=phase.trigger.describe(),
            )
        try:
            for phase in self.scenario.phases:
                self._arming_phase = phase
                phase.trigger.arm(self, self._make_fire(phase))
        except Exception:
            # A half-armed run must not leave live subscriptions behind:
            # an aborted scenario's phases would otherwise fire as
            # phantoms on the next matching data-plane change.
            for phase in self.scenario.phases:
                phase.trigger.disarm()
            raise
        finally:
            self._arming_phase = None
        return self

    def _make_fire(self, phase: "Phase") -> Callable[[str], None]:
        def fire(reason: str) -> None:
            record = self.records[phase.name]
            record.fire_count += 1
            if record.fire_count == 1:
                record.triggered_at_s = self.elapsed_s()
                record.trigger_reason = reason
            # Hop through one labelled event so actions never execute inside
            # a registry flush callback (and so the kernel accounts for them).
            self.simulator.call_soon(
                lambda: self._execute_phase(phase),
                label=f"scenario:{self.scenario.name}:{phase.name}",
            )

        return fire

    # ------------------------------------------------------------------
    def _execute_phase(self, phase: "Phase") -> None:
        record = self.records[phase.name]
        for action in phase.actions:
            try:
                outcome = action.execute(self.cyber_range)
                result = "ok" if outcome is None else str(outcome)
                ok = True
            except Exception as exc:  # after-action visibility, not a crash
                result = f"FAILED: {exc}"
                ok = False
            entry = ActionRecord(
                time_s=self.elapsed_s(),
                team=phase.team,
                description=action.description,
                result=result,
                ok=ok,
                phase=phase.name,
            )
            record.actions.append(entry)
            self.log.append(entry)
        for outcome in phase.outcomes:
            self._schedule_outcome(phase, record, outcome)
        first_completion = record.completed_at_s is None
        record.completed_at_s = self.elapsed_s()
        if first_completion:
            for callback in self._completion_listeners.pop(phase.name, []):
                callback(record.completed_at_s)

    def _schedule_outcome(self, phase: "Phase", record: PhaseRecord, outcome) -> None:
        outcome_record = OutcomeRecord(name=outcome.name, status="pending")
        record.outcomes.append(outcome_record)

        def score() -> None:
            passed, detail = outcome.evaluate(self.cyber_range)
            outcome_record.status = "pass" if passed else "fail"
            outcome_record.detail = detail
            outcome_record.time_s = self.elapsed_s()

        if outcome.after_s <= 0:
            score()
        else:
            self._outcome_events.append(
                self.simulator.schedule(
                    int(outcome.after_s * SECOND),
                    score,
                    label=f"scenario:{self.scenario.name}:{phase.name}:outcome",
                )
            )

    # ------------------------------------------------------------------
    def finish(self) -> "ScenarioRun":
        """Disarm all triggers and freeze the report.

        Outcome checks still scheduled beyond this point are cancelled and
        stay ``pending`` — the verdict cannot mutate after the report is
        read, even if the same simulator keeps running.
        """
        if self.finished:
            return self
        self.finished = True
        for phase in self.scenario.phases:
            phase.trigger.disarm()
        for event in self._outcome_events:
            event.cancel()
        self._outcome_events.clear()
        return self

    # ------------------------------------------------------------------
    # Verdict + reporting
    # ------------------------------------------------------------------
    @property
    def outcome_records(self) -> list[OutcomeRecord]:
        return [o for record in self.records.values() for o in record.outcomes]

    @property
    def passed(self) -> bool:
        """All scored outcomes pass and none are still pending.

        A scenario with no outcomes passes vacuously (pure exercises).
        Outcomes whose phase never fired were never scored and therefore
        do not appear — phases that were *expected* to fire should carry
        an outcome on a downstream (e.g. ``after``) phase to catch that.
        """
        outcomes = self.outcome_records
        return all(o.status == "pass" for o in outcomes)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.name,
            "description": self.scenario.description,
            "passed": self.passed,
            "duration_s": self.elapsed_s(),
            "phases": [
                self.records[phase.name].to_dict()
                for phase in self.scenario.phases
            ],
        }

    def after_action_report(self) -> str:
        """Human-readable structured report: per-phase timing + outcomes."""
        lines = [f"=== after-action report: {self.scenario.name} ==="]
        if self.scenario.description:
            lines.append(self.scenario.description)
        for phase in self.scenario.phases:
            record = self.records[phase.name]
            if record.fired:
                timing = (
                    f"fired at {record.triggered_at_s:8.3f}s"
                    f" ({record.trigger_reason})"
                )
                if record.fire_count > 1:
                    timing += f" x{record.fire_count}"
            else:
                timing = "never fired"
            lines.append(f"-- phase {record.name!r} [{record.trigger}]: {timing}")
            for entry in record.actions:
                lines.append(
                    f"   [{entry.time_s:8.3f}s] ({entry.team:>5}) "
                    f"{entry.description} -> {entry.result}"
                )
            for outcome in record.outcomes:
                stamp = (
                    f"{outcome.time_s:8.3f}s" if outcome.time_s is not None
                    else "       -"
                )
                lines.append(
                    f"   [{stamp}] OUTCOME {outcome.name}: "
                    f"{outcome.status.upper()}"
                    + (f" ({outcome.detail})" if outcome.detail else "")
                )
        verdict = "PASS" if self.passed else "FAIL"
        scored = self.outcome_records
        lines.append(
            f"=== verdict: {verdict} "
            f"({sum(1 for o in scored if o.passed)}/{len(scored)} outcomes) ==="
        )
        return "\n".join(lines)
