"""Parameterized scenario families — the catalog's generation step.

A :class:`ScenarioFamily` is a template over a :class:`~repro.scenario.
catalog.inventory.ModelInventory`: given the model set's actual buses,
breakers, tie lines, loads and IED hosts it emits concrete declarative
scenario specs (plain dicts, the exact ``Scenario.from_spec`` format), one
per applicable *site*.  The emitted specs are portable training artifacts:
they round-trip through ``Scenario.from_spec(...).to_spec()`` and run from
the ``sgml scenario`` / ``sgml campaign`` CLI on any range compiled from
the same model set.

Families ship branch-on-outcome graphs: probes carry *gate* outcomes that
steer ``on_pass``/``on_fail``/``on_timeout`` edges, so the same spec adapts
to what actually happens on the range (a strike that never gets its overload
window escalates; a blinded strike that lands is confirmed, one that misses
falls back to direct injection).

Built-in families (``FAMILIES``):

=====================  =====================================================
``fci-on-overload``    white cell steps a load; when line loading crosses
                       the threshold the red team injects an MMS breaker
                       open; escalates to a direct strike on timeout/failure
``mitm-blinded-strike``ARP-spoof MITM blinds an MMS client, strike from the
                       on-path host; falls back to a direct strike on_fail
``cascading-contingency`` forced line outage; when the far bus collapses a
                       second breaker is tripped; white-cell relief on
                       timeout restores the first breaker
``load-step-stress``   staircase load steps; a sag watch routes to blue
                       load-shedding or a ride-through check
``breaker-storm-drill``open/reclose sweep across breakers with per-step
                       status scoring (the event-storm workload)
=====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.scenario.catalog.inventory import (
    GuardedLine,
    InventoryError,
    MmsPair,
    ModelInventory,
)
from repro.scenario.scenario import Scenario
from repro.sgml.modelset import SgmlModelSet


class CatalogError(Exception):
    """Family misuse or a model set with no applicable site."""


class NoApplicableSite(CatalogError):
    """This model set has no site this family can parameterize over.

    The only :class:`CatalogError` subtype a whole-catalog sweep may skip
    over; parameter typos and unknown family names always surface.
    """


@dataclass
class CatalogEntry:
    """One generated scenario: family provenance + the concrete spec."""

    family: str
    name: str
    site: str
    spec: dict

    def scenario(self) -> Scenario:
        """Instantiate (and therefore validate) the spec."""
        return Scenario.from_spec(self.spec)


class ScenarioFamily:
    """A parameterized scenario template over a model inventory."""

    name: str = ""
    description: str = ""
    #: Tunable parameters with their defaults (overridable per generate()).
    defaults: dict = {}

    # ------------------------------------------------------------------
    def sites(self, inventory: ModelInventory) -> list:
        """Applicable sites in this model set (ordered, deterministic)."""
        raise NotImplementedError

    def build_spec(self, inventory: ModelInventory, site, params: dict) -> dict:
        """One concrete scenario spec for one site."""
        raise NotImplementedError

    def site_label(self, site) -> str:
        return str(site)

    # ------------------------------------------------------------------
    def generate(
        self,
        inventory: ModelInventory,
        max_sites: int = 1,
        **overrides,
    ) -> list[CatalogEntry]:
        """Emit up to ``max_sites`` concrete specs for this model set."""
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise CatalogError(
                f"family {self.name!r} has no parameters {sorted(unknown)} "
                f"(known: {sorted(self.defaults)})"
            )
        params = {**self.defaults, **overrides}
        sites = self.sites(inventory)
        if not sites:
            raise NoApplicableSite(
                f"family {self.name!r}: model set {inventory.name!r} has no "
                "applicable site"
            )
        entries = []
        for site in sites[: max(1, max_sites)]:
            label = self.site_label(site)
            spec = self.build_spec(inventory, site, params)
            spec.setdefault("name", f"{self.name}-{label}")
            entries.append(
                CatalogEntry(
                    family=self.name,
                    name=spec["name"],
                    site=label,
                    spec=spec,
                )
            )
        return entries


# ---------------------------------------------------------------------------
# Spec-building helpers (keep the families readable)
# ---------------------------------------------------------------------------


def _phase(name: str, trigger, team: str = "red", **extra) -> dict:
    phase = {"name": name, "trigger": trigger, "team": team}
    phase.update({k: v for k, v in extra.items() if v not in ("", None, [])})
    return phase


def _write(key: str, value) -> dict:
    return {"write_point": {"key": key, "value": value}}


def _record(key: str) -> dict:
    return {"record": {"key": key}}


def _fci(target, attacker: str = "red1", with_switch: bool = True) -> dict:
    params = {"server_ip": target.server_ip, "ied": target.ied}
    if attacker != "red1":
        params["attacker"] = attacker
    if with_switch:
        params["switch"] = target.switch
    return {"inject_breaker": params}


def _outcome(name: str, check: str, after_s: float = 0.0, gate: bool = False) -> dict:
    outcome: dict = {"name": name, "check": check}
    if after_s:
        outcome["after_s"] = after_s
    if gate:
        outcome["gate"] = True
    return outcome


# ---------------------------------------------------------------------------
# The built-in families
# ---------------------------------------------------------------------------


class FciOnOverloadFamily(ScenarioFamily):
    """Load-step a feeder until a guarded line overloads, then strike."""

    name = "fci-on-overload"
    description = (
        "white cell steps a load; when the guarded line's loading crosses "
        "the threshold, red injects an MMS breaker-open (FCI); a strike "
        "window that never opens (or a strike that misses) escalates to a "
        "direct injection"
    )
    defaults = {
        "load_scale": 3.0,
        "loading_threshold_pct": 35.0,
        "hysteresis_pct": 5.0,
        "strike_window_s": 6.0,
        "duration_s": 15.0,
    }

    def sites(self, inventory: ModelInventory) -> list[GuardedLine]:
        return [g for g in inventory.guarded_lines if inventory.loads]

    def site_label(self, site: GuardedLine) -> str:
        return site.line.name

    def build_spec(self, inventory, site: GuardedLine, params) -> dict:
        line, breaker = site.line, site.breaker
        load = inventory.loads[0]  # biggest mover
        tripped = f"not {breaker.status_key}"
        return {
            "name": f"{self.name}-{line.name}",
            "description": (
                f"overload {line.name} via {load.name} x"
                f"{params['load_scale']:g}, FCI {breaker.name} through "
                f"{breaker.fci.ied}"
            ),
            "duration_s": params["duration_s"],
            "phases": [
                _phase(
                    "stress",
                    {"at": 1.0},
                    team="white",
                    actions=[_write(load.scale_key, params["load_scale"])],
                ),
                _phase(
                    "strike",
                    {
                        "when": (
                            f"{line.loading_key} > "
                            f"{params['loading_threshold_pct']:g}"
                        ),
                        "hysteresis": params["hysteresis_pct"],
                    },
                    actions=[_fci(breaker.fci)],
                    outcomes=[
                        _outcome(
                            "breaker forced open", tripped,
                            after_s=1.5, gate=True,
                        )
                    ],
                    on_pass="confirm",
                    on_fail="escalate",
                    on_timeout="escalate",
                    timeout_s=params["strike_window_s"],
                ),
                _phase(
                    "confirm",
                    {"at": 0.5},
                    team="white",
                    actions=[_record(f"meas/{site.far_bus}/vm_pu")],
                    outcomes=[_outcome("line de-energized", tripped)],
                ),
                _phase(
                    "escalate",
                    {"at": 0.5},
                    actions=[_fci(breaker.fci, attacker="red-direct")],
                    outcomes=[
                        _outcome(
                            "breaker open after escalation", tripped,
                            after_s=1.5,
                        )
                    ],
                ),
            ],
        }


class MitmBlindedStrikeFamily(ScenarioFamily):
    """Blind an MMS client with an ARP-spoofing MITM, strike while blind."""

    name = "mitm-blinded-strike"
    description = (
        "ARP-spoof the client/server MMS path, falsify the monitored "
        "measurement, strike from the on-path host; a strike that misses "
        "falls back to direct injection from the server's own LAN"
    )
    defaults = {
        "spoof_value": 0.999,
        "strike_delay_s": 2.0,
        "duration_s": 20.0,
    }

    def sites(self, inventory: ModelInventory) -> list[tuple]:
        sites = []
        fci_by_ied = {
            b.fci.ied: b for b in inventory.fci_breakers
        }
        for pair in inventory.mms_pairs:
            breaker = fci_by_ied.get(pair.server)
            if breaker is not None:
                sites.append((pair, breaker))
        return sites

    def site_label(self, site) -> str:
        pair, _breaker = site
        return pair.server

    def build_spec(self, inventory, site, params) -> dict:
        pair, breaker = site
        tripped = f"not {breaker.status_key}"
        return {
            "name": f"{self.name}-{pair.server}",
            "description": (
                f"MITM {pair.client} <-> {pair.server}, falsify "
                f"{pair.spoof_ref}, strike {breaker.name} while blind"
            ),
            "duration_s": params["duration_s"],
            "phases": [
                _phase(
                    "blind",
                    {"at": 1.0},
                    actions=[
                        {
                            "mitm_spoof": {
                                "victim_a_ip": pair.client_ip,
                                "victim_b_ip": pair.server_ip,
                                "switch": pair.spy_switch,
                                "ref": pair.spoof_ref,
                                "value": params["spoof_value"],
                            }
                        }
                    ],
                ),
                _phase(
                    "strike",
                    {"after": "blind", "delay": params["strike_delay_s"]},
                    actions=[
                        {
                            "inject_breaker": {
                                "server_ip": pair.server_ip,
                                "ied": pair.server,
                                "attacker": "spy",
                                "switch": pair.spy_switch,
                            }
                        }
                    ],
                    outcomes=[
                        _outcome(
                            "breaker forced open while blind", tripped,
                            after_s=1.0, gate=True,
                        )
                    ],
                    on_pass="hold",
                    on_fail="direct-strike",
                ),
                _phase(
                    "hold",
                    {"at": 0.5},
                    team="white",
                    outcomes=[_outcome("blinded strike landed", tripped)],
                ),
                _phase(
                    "direct-strike",
                    {"at": 0.5},
                    actions=[_fci(breaker.fci, attacker="red-direct")],
                    outcomes=[
                        _outcome(
                            "breaker open after fallback", tripped,
                            after_s=1.5,
                        )
                    ],
                ),
            ],
        }


class CascadingContingencyFamily(ScenarioFamily):
    """Forced line outage, then a second trip when the far bus collapses."""

    name = "cascading-contingency"
    description = (
        "white cell forces a guarded line's breaker open; when the far-end "
        "bus collapses the cascade trips a second breaker; if the grid "
        "rides through, white-cell relief recloses the first breaker"
    )
    defaults = {
        "collapse_vm_pu": 0.5,
        "cascade_window_s": 6.0,
        "duration_s": 15.0,
    }

    def sites(self, inventory: ModelInventory) -> list[tuple]:
        sites = []
        for guarded in inventory.guarded_lines:
            second = next(
                (
                    b
                    for b in inventory.breakers
                    if b.name != guarded.breaker.name
                ),
                None,
            )
            if second is not None and guarded.far_bus:
                sites.append((guarded, second))
        return sites

    def site_label(self, site) -> str:
        guarded, _second = site
        return guarded.line.name

    def build_spec(self, inventory, site, params) -> dict:
        guarded, second = site
        far_vm = f"meas/{guarded.far_bus}/vm_pu"
        return {
            "name": f"{self.name}-{guarded.line.name}",
            "description": (
                f"force {guarded.breaker.name} open; on {guarded.far_bus} "
                f"collapse, cascade to {second.name}; relief on ride-through"
            ),
            "duration_s": params["duration_s"],
            "phases": [
                _phase(
                    "first-contingency",
                    {"at": 1.0},
                    team="white",
                    actions=[
                        _record(far_vm),
                        _write(guarded.breaker.command_key, False),
                    ],
                ),
                _phase(
                    "cascade-watch",
                    {"when": f"{far_vm} < {params['collapse_vm_pu']:g}"},
                    actions=[
                        _record(far_vm),
                        _write(second.command_key, False),
                    ],
                    outcomes=[
                        _outcome(
                            "second breaker tripped",
                            f"not {second.status_key}",
                            after_s=1.0,
                        )
                    ],
                    on_timeout="relief",
                    timeout_s=params["cascade_window_s"],
                ),
                _phase(
                    "relief",
                    {"at": 0.5},
                    team="blue",
                    actions=[_write(guarded.breaker.command_key, True)],
                    outcomes=[
                        _outcome(
                            "system restored", f"{far_vm} > 0.9", after_s=2.0
                        )
                    ],
                ),
            ],
        }


class LoadStepStressFamily(ScenarioFamily):
    """Staircase load steps with a sag watch routing shed vs ride-through."""

    name = "load-step-stress"
    description = (
        "step the biggest load up in a staircase; a voltage-sag watch "
        "routes to blue-team load shedding (and checks recovery) or, if "
        "the bus rides the steps out, to a ride-through check"
    )
    defaults = {
        "steps": (1.5, 2.5, 4.0),
        "step_interval_s": 3.0,
        "sag_vm_pu": 0.97,
        "recovery_vm_pu": 0.98,
        "watch_window_s": 12.0,
        "duration_s": 25.0,
    }

    def sites(self, inventory: ModelInventory) -> list:
        return [load for load in inventory.loads if load.bus][:1] or []

    def site_label(self, site) -> str:
        return site.name

    def build_spec(self, inventory, site, params) -> dict:
        bus_vm = f"meas/{site.bus}/vm_pu"
        phases = []
        previous = None
        for index, scale in enumerate(params["steps"], start=1):
            trigger: Union[dict, float]
            if previous is None:
                trigger = {"at": 1.0}
            else:
                trigger = {
                    "after": previous, "delay": params["step_interval_s"]
                }
            name = f"step-{index}"
            phases.append(
                _phase(
                    name,
                    trigger,
                    team="white",
                    actions=[_write(site.scale_key, scale)],
                )
            )
            previous = name
        phases.append(
            _phase(
                "sag-watch",
                {"when": f"{bus_vm} < {params['sag_vm_pu']:g}"},
                team="blue",
                actions=[_record(bus_vm)],
                on_pass="shed",
                on_timeout="ride-through",
                timeout_s=params["watch_window_s"],
            )
        )
        phases.append(
            _phase(
                "shed",
                {"at": 0.5},
                team="blue",
                actions=[_write(site.scale_key, 1.0)],
                outcomes=[
                    _outcome(
                        "voltage recovered",
                        f"{bus_vm} > {params['recovery_vm_pu']:g}",
                        after_s=3.0,
                    )
                ],
            )
        )
        phases.append(
            _phase(
                "ride-through",
                {"at": 0.0},
                team="white",
                actions=[_record(bus_vm)],
                outcomes=[
                    _outcome(
                        "bus rode the steps out",
                        f"{bus_vm} > {params['sag_vm_pu']:g}",
                    )
                ],
            )
        )
        return {
            "name": f"{self.name}-{site.name}",
            "description": (
                f"staircase {site.name} through {params['steps']}, watch "
                f"{site.bus} for sag below {params['sag_vm_pu']:g} pu"
            ),
            "duration_s": params["duration_s"],
            "phases": phases,
        }


class BreakerStormDrillFamily(ScenarioFamily):
    """Open/reclose sweep across breakers — the event-storm drill."""

    name = "breaker-storm-drill"
    description = (
        "operator drill: open then reclose a sweep of breakers in "
        "sequence, scoring every transition on the published status points"
    )
    defaults = {
        "breaker_count": 3,
        "step_s": 1.5,
        "duration_s": 20.0,
    }

    def sites(self, inventory: ModelInventory) -> list[tuple]:
        return [tuple(inventory.breakers)] if inventory.breakers else []

    def site_label(self, site) -> str:
        return f"{len(site)}-breakers"

    def build_spec(self, inventory, site, params) -> dict:
        breakers = list(site)[: int(params["breaker_count"])]
        phases = []
        time_s = 1.0
        for breaker in breakers:
            phases.append(
                _phase(
                    f"open-{breaker.name}",
                    {"at": time_s},
                    team="blue",
                    actions=[_write(breaker.command_key, False)],
                    outcomes=[
                        _outcome(
                            f"{breaker.name} opened",
                            f"not {breaker.status_key}",
                            after_s=0.5,
                        )
                    ],
                )
            )
            phases.append(
                _phase(
                    f"reclose-{breaker.name}",
                    {"at": time_s + params["step_s"]},
                    team="blue",
                    actions=[_write(breaker.command_key, True)],
                    outcomes=[
                        _outcome(
                            f"{breaker.name} reclosed",
                            breaker.status_key,
                            after_s=0.5,
                        )
                    ],
                )
            )
            time_s += 2 * params["step_s"]
        return {
            "name": f"{self.name}-{len(breakers)}x",
            "description": (
                f"open/reclose sweep over "
                f"{', '.join(b.name for b in breakers)}"
            ),
            "duration_s": max(params["duration_s"], time_s + 2.0),
            "phases": phases,
        }


#: The shipped catalog, in presentation order.
FAMILIES: dict[str, ScenarioFamily] = {
    family.name: family
    for family in (
        FciOnOverloadFamily(),
        MitmBlindedStrikeFamily(),
        CascadingContingencyFamily(),
        LoadStepStressFamily(),
        BreakerStormDrillFamily(),
    )
}


def generate_catalog(
    model: Union[SgmlModelSet, ModelInventory],
    families: Optional[list[str]] = None,
    max_sites: int = 1,
    params: Optional[dict] = None,
) -> list[CatalogEntry]:
    """Generate the scenario catalog for one model set.

    ``families`` selects a subset by name (default: all).  ``max_sites``
    bounds how many sites each family instantiates.  ``params`` maps
    family name → parameter overrides.  Families with no applicable site
    in this model set are skipped (generating across heterogeneous model
    sets must not fail on the sparse ones) — unless they were requested by
    name, in which case the error surfaces.  Parameter errors (a typo'd
    override key, an unknown family name) always surface: a sweep must
    never silently drop a family the user tried to configure.
    """
    inventory = (
        model
        if isinstance(model, ModelInventory)
        else ModelInventory.from_model(model)
    )
    selected = list(FAMILIES) if families is None else list(families)
    unknown = [name for name in selected if name not in FAMILIES]
    if unknown:
        raise CatalogError(
            f"unknown families {unknown} (known: {sorted(FAMILIES)})"
        )
    entries: list[CatalogEntry] = []
    for name in selected:
        family = FAMILIES[name]
        overrides = (params or {}).get(name, {})
        try:
            entries.extend(
                family.generate(inventory, max_sites=max_sites, **overrides)
            )
        except NoApplicableSite:
            if families is not None:
                raise
    return entries
