"""Scenario catalog: parameterized families generated per model set.

The paper's end goal is automated *generation* of cybersecurity
experiments and training content.  This package is that generation step:

* :class:`ModelInventory` introspects an :class:`~repro.sgml.modelset.
  SgmlModelSet` (or a compiled range's artifacts) into the attack surface —
  buses, breakers, tie lines, loads, IED hosts, MMS client/server pairs;
* :class:`ScenarioFamily` subclasses (``FAMILIES``) template concrete,
  branch-on-outcome scenario specs over that inventory;
* :func:`generate_catalog` sweeps the families over one model set and
  returns :class:`CatalogEntry` records whose ``spec`` dicts are portable
  ``Scenario.from_spec`` training artifacts.

The ``sgml campaign`` CLI runs (or ``--dry-run`` validates) a generated
catalog end to end; see :mod:`repro.scenario.campaign`.
"""

from repro.scenario.catalog.families import (
    FAMILIES,
    BreakerStormDrillFamily,
    CascadingContingencyFamily,
    CatalogEntry,
    CatalogError,
    FciOnOverloadFamily,
    LoadStepStressFamily,
    MitmBlindedStrikeFamily,
    NoApplicableSite,
    ScenarioFamily,
    generate_catalog,
)
from repro.scenario.catalog.inventory import (
    BreakerInfo,
    FciTarget,
    GuardedLine,
    IedInfo,
    InventoryError,
    LineInfo,
    LoadInfo,
    MmsPair,
    ModelInventory,
)

__all__ = [
    "BreakerInfo",
    "BreakerStormDrillFamily",
    "CascadingContingencyFamily",
    "CatalogEntry",
    "CatalogError",
    "FAMILIES",
    "FciOnOverloadFamily",
    "FciTarget",
    "GuardedLine",
    "IedInfo",
    "InventoryError",
    "LineInfo",
    "LoadInfo",
    "LoadStepStressFamily",
    "MitmBlindedStrikeFamily",
    "MmsPair",
    "ModelInventory",
    "NoApplicableSite",
    "ScenarioFamily",
    "generate_catalog",
]
