"""Model-set introspection for scenario generation (the paper's step 2).

The catalog derives training content *from the standard model set itself*
(SG-ML / Auto-SGCR): a :class:`ModelInventory` digests a
:class:`~repro.sgml.modelset.SgmlModelSet` — or the
:class:`~repro.sgml.processor.CompiledArtifacts` of an already-compiled
range — into the attack surface scenario families parameterize over:

* **buses** (connectivity-node paths; ``meas/<bus>/vm_pu`` point keys),
* **lines** incl. SED tie lines (``meas/<line>/loading`` keys, endpoints),
* **breakers** (``status``/``cmd`` keys, adjacency, and — when an IED
  config carries a writable ``cmd/<breaker>/close`` mapping — the
  :class:`FciTarget` describing how to strike it over MMS),
* **loads** (``cmd/<load>/scale`` white-cell step keys),
* **IED hosts** (IP + attach switch from the network plan), and
* **MMS client/server pairs** (SCADA direct sources, PLC read binds, or —
  on model sets with no SCADA/PLC — a same-LAN fallback pair) for
  man-in-the-middle families.

Building an inventory does **not** compile a range: it runs only the
SSD/SCD mergers and the network planner, so catalog generation and
``--dry-run`` validation stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.scl.merge import merge_scd, merge_ssd
from repro.sgml.modelset import SgmlModelSet
from repro.sgml.network_gen import NetworkPlan, generate_network_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sgml.processor import CompiledArtifacts


class InventoryError(Exception):
    """The model set lacks something introspection requires."""


@dataclass(frozen=True)
class FciTarget:
    """How to false-command-inject a breaker: which MMS server to hit."""

    breaker: str
    ied: str
    server_ip: str
    switch: str


@dataclass(frozen=True)
class BreakerInfo:
    name: str
    nodes: tuple[str, ...]  # terminal connectivity-node paths
    fci: Optional[FciTarget] = None

    @property
    def status_key(self) -> str:
        return f"status/{self.name}/closed"

    @property
    def command_key(self) -> str:
        return f"cmd/{self.name}/close"


@dataclass(frozen=True)
class LineInfo:
    name: str
    endpoints: tuple[str, ...]  # connectivity-node paths
    is_tie: bool = False

    @property
    def loading_key(self) -> str:
        return f"meas/{self.name}/loading"

    @property
    def current_key(self) -> str:
        return f"meas/{self.name}/i_ka"


@dataclass(frozen=True)
class GuardedLine:
    """A line whose current is measured by an IED that can also trip an
    adjacent breaker — the site shape of overload/cascade families."""

    line: LineInfo
    breaker: BreakerInfo

    @property
    def far_bus(self) -> str:
        """The line endpoint on the side away from the breaker."""
        far = [n for n in self.line.endpoints if n not in self.breaker.nodes]
        return far[0] if far else self.line.endpoints[-1]


@dataclass(frozen=True)
class LoadInfo:
    name: str
    bus: str
    p_mw: float

    @property
    def scale_key(self) -> str:
        return f"cmd/{self.name}/scale"


@dataclass(frozen=True)
class IedInfo:
    name: str
    ip: str
    switch: str


@dataclass(frozen=True)
class MmsPair:
    """An interceptable client/server MMS relationship (MITM site)."""

    client: str
    client_ip: str
    server: str
    server_ip: str
    spy_switch: str  # where the on-path attacker attaches
    spoof_ref: str = ""  # MMS object reference worth falsifying


def _vm_key(bus: str) -> str:
    return f"meas/{bus}/vm_pu"


@dataclass
class ModelInventory:
    """Everything the scenario families parameterize over."""

    name: str = "model"
    substations: list[str] = field(default_factory=list)
    buses: list[str] = field(default_factory=list)
    lines: list[LineInfo] = field(default_factory=list)
    breakers: list[BreakerInfo] = field(default_factory=list)
    loads: list[LoadInfo] = field(default_factory=list)
    ieds: dict[str, IedInfo] = field(default_factory=dict)
    hmis: list[str] = field(default_factory=list)
    guarded_lines: list[GuardedLine] = field(default_factory=list)
    mms_pairs: list[MmsPair] = field(default_factory=list)

    # ------------------------------------------------------------------
    bus_vm_key = staticmethod(_vm_key)

    @property
    def tie_lines(self) -> list[LineInfo]:
        return [line for line in self.lines if line.is_tie]

    @property
    def fci_breakers(self) -> list[BreakerInfo]:
        return [b for b in self.breakers if b.fci is not None]

    def summary(self) -> dict[str, int]:
        return {
            "substations": len(self.substations),
            "buses": len(self.buses),
            "lines": len(self.lines),
            "tie_lines": len(self.tie_lines),
            "breakers": len(self.breakers),
            "fci_breakers": len(self.fci_breakers),
            "loads": len(self.loads),
            "ieds": len(self.ieds),
            "hmis": len(self.hmis),
            "guarded_lines": len(self.guarded_lines),
            "mms_pairs": len(self.mms_pairs),
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: SgmlModelSet) -> "ModelInventory":
        """Introspect a parsed model set (mergers + planner only)."""
        ssd_sources = model.ssds or model.scds
        scd_sources = model.scds or model.ssds
        if not ssd_sources:
            raise InventoryError("model set has no SSD or SCD files")
        merged_ssd = merge_ssd(ssd_sources, sed=model.sed)
        plan = generate_network_plan(merge_scd(scd_sources, sed=model.sed))
        return cls._build(merged_ssd, plan, model)

    @classmethod
    def from_artifacts(
        cls, model: SgmlModelSet, artifacts: "CompiledArtifacts"
    ) -> "ModelInventory":
        """Reuse an already-compiled range's merged documents and plan."""
        if artifacts.merged_ssd is None or artifacts.network_plan is None:
            raise InventoryError("artifacts are not compiled yet")
        return cls._build(artifacts.merged_ssd, artifacts.network_plan, model)

    # ------------------------------------------------------------------
    @classmethod
    def _build(cls, merged_ssd, plan: NetworkPlan, model: SgmlModelSet):
        inventory = cls(name=merged_ssd.header.id or "model")
        for substation in merged_ssd.substations:
            inventory.substations.append(substation.name)
            for level, bay in substation.iter_bays():
                for node in bay.connectivity_nodes:
                    path = node.path_name or (
                        f"{substation.name}/{level.name}/{bay.name}/{node.name}"
                    )
                    inventory.buses.append(path)
            for _level, _bay, equipment in substation.iter_equipment():
                nodes = tuple(
                    t.connectivity_node for t in equipment.terminals
                )
                if equipment.type in ("CBR", "DIS"):
                    inventory.breakers.append(
                        BreakerInfo(name=equipment.name, nodes=nodes)
                    )
                elif equipment.type == "LIN":
                    inventory.lines.append(
                        LineInfo(name=equipment.name, endpoints=nodes)
                    )
                elif equipment.type == "MOT":
                    inventory.loads.append(
                        LoadInfo(
                            name=equipment.name,
                            bus=nodes[0] if nodes else "",
                            p_mw=float(
                                equipment.attributes.get("p_mw", "0") or 0.0
                            ),
                        )
                    )
        for tie in merged_ssd.tie_lines:
            inventory.lines.append(
                LineInfo(
                    name=tie.name,
                    endpoints=(tie.from_node, tie.to_node),
                    is_tie=True,
                )
            )
        for host in plan.hosts:
            inventory.ieds[host.name] = IedInfo(
                name=host.name, ip=host.ip, switch=host.switch
            )
        inventory._attach_fci_targets(model)
        inventory._derive_guarded_lines(model)
        inventory._derive_mms_pairs(model)
        # Biggest loads first: families that step "the" load step the one
        # that moves the grid most.
        inventory.loads.sort(key=lambda load: -load.p_mw)
        return inventory

    # ------------------------------------------------------------------
    def _writable_breakers_of(self, config) -> list[str]:
        names = []
        for mapping in config.points:
            if mapping.direction != "write":
                continue
            parts = mapping.db_key.split("/")
            if len(parts) == 3 and parts[0] == "cmd" and parts[2] == "close":
                names.append(parts[1])
        return names

    def _attach_fci_targets(self, model: SgmlModelSet) -> None:
        by_name = {b.name: b for b in self.breakers}
        for ied_name, config in model.ied_configs.items():
            host = self.ieds.get(ied_name)
            if host is None:
                continue
            for breaker_name in self._writable_breakers_of(config):
                breaker = by_name.get(breaker_name)
                if breaker is None or breaker.fci is not None:
                    continue  # first writer wins (deterministic)
                by_name[breaker_name] = BreakerInfo(
                    name=breaker.name,
                    nodes=breaker.nodes,
                    fci=FciTarget(
                        breaker=breaker.name,
                        ied=ied_name,
                        server_ip=host.ip,
                        switch=host.switch,
                    ),
                )
        self.breakers = [by_name[b.name] for b in self.breakers]

    def _derive_guarded_lines(self, model: SgmlModelSet) -> None:
        """Pair each line with an FCI-strikeable breaker *adjacent* to it,
        preferring the IED that also measures the line's current."""
        by_line = {line.name: line for line in self.lines}
        by_breaker = {b.name: b for b in self.breakers}
        seen: set[str] = set()
        for ied_name, config in model.ied_configs.items():
            measured = {
                key.split("/")[1]
                for key in (m.db_key for m in config.points)
                if key.startswith("meas/") and key.endswith("/i_ka")
            }
            writable = self._writable_breakers_of(config)
            for line_name in sorted(measured):
                line = by_line.get(line_name)
                if line is None or line_name in seen:
                    continue
                for breaker_name in writable:
                    breaker = by_breaker.get(breaker_name)
                    if breaker is None or breaker.fci is None:
                        continue
                    # Adjacency: the breaker shares a connectivity node with
                    # the line, so opening it actually de-energizes it.
                    if not set(breaker.nodes) & set(line.endpoints):
                        continue
                    self.guarded_lines.append(GuardedLine(line, breaker))
                    seen.add(line_name)
                    break
        # Deterministic order regardless of dict iteration.
        self.guarded_lines.sort(key=lambda g: g.line.name)

    def _derive_mms_pairs(self, model: SgmlModelSet) -> None:
        def add(client, server, spoof_ref=""):
            client_host = self.ieds.get(client)
            server_host = self.ieds.get(server)
            if client_host is None or server_host is None:
                return
            self.mms_pairs.append(
                MmsPair(
                    client=client,
                    client_ip=client_host.ip,
                    server=server,
                    server_ip=server_host.ip,
                    spy_switch=client_host.switch,
                    spoof_ref=spoof_ref
                    or f"{server}LD0/MMXU1.PhV.phsA.cVal.mag.f",
                )
            )

        scada = model.scada_config
        if scada is not None and scada.scada_node:
            self.hmis.append(scada.scada_node)
            for source in scada.sources:
                if str(source.get("type", "")).upper() != "MMS":
                    continue
                server = source.get("host", "")
                ref = next(
                    (
                        point.get("objectRef", "")
                        for point in scada.points
                        if point.get("dataSource") == source.get("name")
                        and point.get("objectRef")
                    ),
                    "",
                )
                add(scada.scada_node, server, ref)
        for plc_name, plc_config in model.plc_configs.items():
            for bind in plc_config.binds:
                if bind.direction == "read":
                    add(plc_name, bind.ied, bind.ref)
                    break  # one representative pair per PLC
        if not self.mms_pairs:
            # No SCADA/PLC clients (e.g. the scale-out model): fall back to
            # a same-LAN neighbour of an FCI-strikeable server, so MITM
            # families still have an interception site to parameterize.
            for breaker in self.fci_breakers:
                server = self.ieds.get(breaker.fci.ied)
                if server is None:
                    continue
                neighbour = next(
                    (
                        host
                        for host in self.ieds.values()
                        if host.switch == server.switch
                        and host.name != server.name
                    ),
                    None,
                )
                if neighbour is not None:
                    add(neighbour.name, server.name)
                    break
