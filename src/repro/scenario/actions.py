"""Scenario actions: what a phase does when its trigger fires.

Actions wrap the range's existing primitives — attack tooling from
:mod:`repro.attacks`, HMI operator commands, raw point writes and
observations — behind one uniform ``execute(cyber_range)`` interface so
phases can mix red/blue/white steps freely and the engine can log every
step with the same after-action semantics the old playbook had (an action
that raises is a logged failure, not a harness crash).

Every action here is also constructible from the declarative spec parsed
by ``Scenario.from_spec`` (see :func:`action_from_spec`), which is what
makes scenario files portable artifacts rather than python code.

:class:`Outcome` is the pass/fail side: a named check (a condition string
/ object or a callable on the range) evaluated a configurable delay after
the phase's actions ran, producing the structured scoring records in the
after-action report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from repro.scenario.conditions import Condition, parse_condition

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.range import CyberRange

ActionFn = Callable[["CyberRange"], Any]


class ActionError(Exception):
    """Malformed action spec."""


class Action:
    """One executable scenario step.

    Subclasses carry a ``description`` field (shown in the after-action
    log) and implement :meth:`execute`.
    """

    description: str

    def execute(self, cyber_range: "CyberRange") -> Any:
        raise NotImplementedError

    def to_spec(self) -> dict:
        """The declarative ``{kind: params}`` form (inverse of
        :func:`action_from_spec`).  Actions wrapping arbitrary python
        callables are code, not data, and raise :class:`ActionError`."""
        raise ActionError(
            f"{type(self).__name__} has no declarative spec form"
        )


@dataclass
class CallAction(Action):
    """Arbitrary callable on the range (the playbook-compat escape hatch)."""

    description: str
    fn: ActionFn

    def execute(self, cyber_range: "CyberRange") -> Any:
        return self.fn(cyber_range)


@dataclass
class OperateAction(Action):
    """Blue-team HMI command on a writable SCADA point."""

    hmi: str
    point: str
    value: Any
    description: str = ""

    def __post_init__(self) -> None:
        if not self.description:
            self.description = f"HMI {self.hmi}: operate {self.point} = {self.value}"

    def execute(self, cyber_range: "CyberRange") -> Any:
        hmi = cyber_range.hmis.get(self.hmi)
        if hmi is None:
            raise ActionError(f"unknown HMI {self.hmi!r}")
        hmi.operate(self.point, self.value)
        return f"{self.point} <- {self.value}"

    def to_spec(self) -> dict:
        params = {"hmi": self.hmi, "point": self.point, "value": self.value}
        auto = f"HMI {self.hmi}: operate {self.point} = {self.value}"
        if self.description != auto:
            params["description"] = self.description
        return {"operate": params}


@dataclass
class WritePointAction(Action):
    """White-cell write straight into the point database.

    Command keys (``cmd/<load>/scale``, ``cmd/<breaker>/close``) are drained
    by the co-simulation tick, so this is how a scenario injects load steps
    and forced contingencies without going through a protocol client.
    """

    key: str
    value: Any
    writer: str = "scenario"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.description:
            self.description = f"write {self.key} = {self.value}"

    def execute(self, cyber_range: "CyberRange") -> Any:
        if self.key.startswith("cmd/"):
            cyber_range.pointdb.write_command(
                self.key,
                self.value,
                writer=self.writer,
                time_us=cyber_range.simulator.now,
            )
        else:
            cyber_range.pointdb.set(self.key, self.value)
        return f"{self.key} <- {self.value}"

    def to_spec(self) -> dict:
        params: dict = {"key": self.key, "value": self.value}
        if self.writer != "scenario":
            params["writer"] = self.writer
        if self.description != f"write {self.key} = {self.value}":
            params["description"] = self.description
        return {"write_point": params}


@dataclass
class RecordAction(Action):
    """White-cell observation: snapshot a measurement into the log."""

    key: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.description:
            self.description = f"record {self.key}"

    def execute(self, cyber_range: "CyberRange") -> Any:
        return f"{self.key} = {cyber_range.measurement(self.key):.4f}"

    def to_spec(self) -> dict:
        params: dict = {"key": self.key}
        if self.description != f"record {self.key}":
            params["description"] = self.description
        return {"record": params}


@dataclass
class InjectBreakerAction(Action):
    """Red-team false command injection (CrashOverride-style MMS write).

    Lazily attaches an attacker host to ``switch`` on first use (reusing an
    existing host of the same name) and drives a
    :class:`~repro.attacks.fci.FalseCommandInjector` from it.
    """

    server_ip: str
    ied: str
    close: bool = False
    attacker: str = "red1"
    switch: str = ""
    description: str = ""
    _injector: Any = field(default=None, repr=False, compare=False)
    _injector_range: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.description:
            verb = "close" if self.close else "open"
            self.description = (
                f"FCI: MMS breaker-{verb} against {self.ied} ({self.server_ip})"
            )

    def _get_injector(self, cyber_range: "CyberRange") -> Any:
        # The injector binds to one range's attacker host; a scenario
        # re-run against a different range must not reuse it.
        if self._injector is None or self._injector_range is not cyber_range:
            # Imported here: repro.attacks pulls in the playbook shim, which
            # imports this package — a module-level import would cycle.
            from repro.attacks.fci import FalseCommandInjector

            host = cyber_range.network.hosts.get(self.attacker)
            if host is None:
                if not self.switch:
                    raise ActionError(
                        f"attacker {self.attacker!r} does not exist and no "
                        "switch was given to attach it to"
                    )
                host = cyber_range.add_attacker(self.switch, name=self.attacker)
            self._injector = FalseCommandInjector(host)
            self._injector_range = cyber_range
        return self._injector

    def execute(self, cyber_range: "CyberRange") -> Any:
        injector = self._get_injector(cyber_range)
        if self.close:
            result = injector.close_breaker(self.server_ip, self.ied)
        else:
            result = injector.open_breaker(self.server_ip, self.ied)
        return result.reference

    def to_spec(self) -> dict:
        params: dict = {"server_ip": self.server_ip, "ied": self.ied}
        if self.close:
            params["close"] = True
        if self.attacker != "red1":
            params["attacker"] = self.attacker
        if self.switch:
            params["switch"] = self.switch
        verb = "close" if self.close else "open"
        auto = f"FCI: MMS breaker-{verb} against {self.ied} ({self.server_ip})"
        if self.description != auto:
            params["description"] = self.description
        return {"inject_breaker": params}


@dataclass
class MitmSpoofAction(Action):
    """Red-team ARP-spoofing MITM with optional measurement falsification.

    Attaches (or reuses) an attacker host on ``switch``, poisons the two
    victims' ARP caches with a :class:`~repro.attacks.mitm.MitmPipeline`
    and — when ``ref`` is given — rewrites that MMS object reference to
    ``value`` in intercepted responses (the paper's Fig. 6 falsification).
    The pipeline stays up for the rest of the run: red-team persistence is
    part of the exercise, and a later phase can strike from the on-path
    ``attacker`` host while the operator is blind.
    """

    victim_a_ip: str
    victim_b_ip: str
    attacker: str = "spy"
    switch: str = ""
    ref: str = ""
    value: float = 0.0
    description: str = ""
    _pipeline: Any = field(default=None, repr=False, compare=False)
    _pipeline_range: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.description:
            self.description = self._auto_description()

    def _auto_description(self) -> str:
        text = f"MITM: ARP-spoof {self.victim_a_ip} <-> {self.victim_b_ip}"
        if self.ref:
            text += f", falsify {self.ref} = {self.value:g}"
        return text

    def execute(self, cyber_range: "CyberRange") -> Any:
        # One pipeline per range: re-running against a fresh range must
        # not reuse a host bound to the old one (InjectBreakerAction idiom).
        if self._pipeline is None or self._pipeline_range is not cyber_range:
            from repro.attacks.mitm import MeasurementSpoofer, MitmPipeline

            host = cyber_range.network.hosts.get(self.attacker)
            if host is None:
                if not self.switch:
                    raise ActionError(
                        f"attacker {self.attacker!r} does not exist and no "
                        "switch was given to attach it to"
                    )
                host = cyber_range.add_attacker(self.switch, name=self.attacker)
            transform = (
                MeasurementSpoofer({self.ref: self.value}) if self.ref else None
            )
            self._pipeline = MitmPipeline(
                host, self.victim_a_ip, self.victim_b_ip, transform=transform
            )
            self._pipeline_range = cyber_range
            self._pipeline.start()
        return f"on-path between {self.victim_a_ip} and {self.victim_b_ip}"

    def to_spec(self) -> dict:
        params: dict = {
            "victim_a_ip": self.victim_a_ip,
            "victim_b_ip": self.victim_b_ip,
        }
        if self.attacker != "spy":
            params["attacker"] = self.attacker
        if self.switch:
            params["switch"] = self.switch
        if self.ref:
            params["ref"] = self.ref
            params["value"] = self.value
        if self.description != self._auto_description():
            params["description"] = self.description
        return {"mitm_spoof": params}


#: Outcome check: a condition over points, or any predicate on the range.
CheckFn = Callable[["CyberRange"], bool]


@dataclass
class Outcome:
    """A named pass/fail check scored ``after_s`` seconds past phase fire.

    ``gate=True`` marks a *gating* outcome: it still determines the owning
    phase's verdict (and therefore which ``on_pass``/``on_fail`` branch is
    taken) but is excluded from :attr:`ScenarioRun.passed` — the training
    verdict of an *adaptive* scenario should score the path it actually
    took, not punish the probe that chose it.
    """

    name: str
    check: Union[Condition, str, CheckFn]
    after_s: float = 0.0
    gate: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.check, str):
            self.check = parse_condition(self.check)
        if self.after_s < 0:
            raise ActionError("outcome after_s must be >= 0")

    def evaluate(self, cyber_range: "CyberRange") -> tuple[bool, str]:
        """Returns (passed, detail)."""
        if isinstance(self.check, Condition):
            passed = self.check.evaluate(cyber_range.pointdb.get)
            return passed, self.check.describe()
        result = self.check(cyber_range)
        return bool(result), f"predicate -> {result!r}"

    def to_spec(self) -> dict:
        if not isinstance(self.check, Condition):
            raise ActionError(
                f"outcome {self.name!r} checks a python callable and has "
                "no declarative spec form"
            )
        spec: dict = {"name": self.name, "check": self.check.to_spec_str()}
        if self.after_s:
            spec["after_s"] = self.after_s
        if self.gate:
            spec["gate"] = True
        return spec


# ---------------------------------------------------------------------------
# Declarative spec construction
# ---------------------------------------------------------------------------

#: (builder, allowed param keys) per action kind.  Unknown keys are
#: rejected: a typo in a portable scenario file must fail loudly, not
#: silently fall back to a default.
_ACTION_BUILDERS: dict[str, tuple[Callable[[dict], Action], frozenset]] = {
    "operate": (
        lambda spec: OperateAction(
            hmi=spec["hmi"],
            point=spec["point"],
            value=spec["value"],
            description=spec.get("description", ""),
        ),
        frozenset({"hmi", "point", "value", "description"}),
    ),
    "write_point": (
        lambda spec: WritePointAction(
            key=spec["key"],
            value=spec["value"],
            writer=spec.get("writer", "scenario"),
            description=spec.get("description", ""),
        ),
        frozenset({"key", "value", "writer", "description"}),
    ),
    "record": (
        lambda spec: RecordAction(
            key=spec["key"], description=spec.get("description", "")
        ),
        frozenset({"key", "description"}),
    ),
    "inject_breaker": (
        lambda spec: InjectBreakerAction(
            server_ip=spec["server_ip"],
            ied=spec["ied"],
            close=bool(spec.get("close", False)),
            attacker=spec.get("attacker", "red1"),
            switch=spec.get("switch", ""),
            description=spec.get("description", ""),
        ),
        frozenset(
            {"server_ip", "ied", "close", "attacker", "switch", "description"}
        ),
    ),
    "mitm_spoof": (
        lambda spec: MitmSpoofAction(
            victim_a_ip=spec["victim_a_ip"],
            victim_b_ip=spec["victim_b_ip"],
            attacker=spec.get("attacker", "spy"),
            switch=spec.get("switch", ""),
            ref=spec.get("ref", ""),
            value=float(spec.get("value", 0.0)),
            description=spec.get("description", ""),
        ),
        frozenset(
            {"victim_a_ip", "victim_b_ip", "attacker", "switch", "ref",
             "value", "description"}
        ),
    ),
}


def action_from_spec(spec: dict) -> Action:
    """Build an action from one ``{kind: {...params}}`` spec mapping."""
    if not isinstance(spec, dict) or len(spec) != 1:
        raise ActionError(
            f"action spec must be a single {{kind: params}} mapping, got {spec!r}"
        )
    (kind, params), = spec.items()
    entry = _ACTION_BUILDERS.get(kind)
    if entry is None:
        raise ActionError(
            f"unknown action kind {kind!r} "
            f"(known: {sorted(_ACTION_BUILDERS)})"
        )
    builder, allowed = entry
    if not isinstance(params, dict):
        raise ActionError(f"action {kind!r} params must be a mapping")
    unknown = set(params) - allowed
    if unknown:
        raise ActionError(
            f"action {kind!r} has unknown fields {sorted(unknown)}"
        )
    try:
        return builder(params)
    except KeyError as exc:
        raise ActionError(f"action {kind!r} is missing field {exc}") from None


def outcome_from_spec(spec: dict) -> Outcome:
    if not isinstance(spec, dict) or "name" not in spec or "check" not in spec:
        raise ActionError(
            f"outcome spec needs 'name' and 'check' fields, got {spec!r}"
        )
    unknown = set(spec) - {"name", "check", "after_s", "gate"}
    if unknown:
        raise ActionError(
            f"outcome {spec['name']!r} has unknown fields {sorted(unknown)}"
        )
    return Outcome(
        name=spec["name"],
        check=spec["check"],
        after_s=float(spec.get("after_s", 0.0)),
        gate=bool(spec.get("gate", False)),
    )
